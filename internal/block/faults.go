package block

import (
	"fmt"
	"os"

	"isla/internal/stats"
)

// Faults injects deterministic, seeded corruption into ISLB block files —
// the storage-tier counterpart of the cluster chaos harness. Every
// primitive derives its target offset and bit from the harness RNG, so a
// battery run is reproducible from its seed alone. Test-only by intent;
// nothing in the serving path imports it.
type Faults struct {
	r *stats.RNG
}

// NewFaults returns a fault injector drawing all randomness from seed.
func NewFaults(seed uint64) *Faults {
	return &Faults{r: stats.NewRNG(seed)}
}

// layout reads path's header and returns its format version and value
// count, without validating the rest of the file — faults must be
// injectable into files that are already damaged.
func layout(path string) (version uint32, n int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return 0, 0, fmt.Errorf("block: faults: read header of %s: %w", path, err)
	}
	return parseHeader(hdr[:])
}

// flipBit flips one RNG-chosen bit of the byte at the RNG-chosen offset in
// [lo, hi) and returns the offset touched.
func (f *Faults) flipBit(path string, lo, hi int64) (int64, error) {
	if hi <= lo {
		return 0, fmt.Errorf("block: faults: empty target region [%d, %d) in %s", lo, hi, path)
	}
	off := lo + f.r.Int63n(hi-lo)
	bit := byte(1) << f.r.Intn(8)
	fl, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, err
	}
	defer fl.Close()
	var b [1]byte
	if _, err := fl.ReadAt(b[:], off); err != nil {
		return 0, err
	}
	b[0] ^= bit
	if _, err := fl.WriteAt(b[:], off); err != nil {
		return 0, err
	}
	return off, nil
}

// FlipPayloadByte flips one random bit inside the value region of the ISLB
// file at path — the corruption a v3 payload checksum exists to catch. It
// returns the byte offset flipped and fails on an empty payload.
func (f *Faults) FlipPayloadByte(path string) (int64, error) {
	_, n, err := layout(path)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("block: faults: %s has no payload to corrupt", path)
	}
	return f.flipBit(path, headerSize, headerSize+8*n)
}

// CorruptFooter flips one random bit inside the footer region (v2/v3) —
// damage the footer's own CRC catches at open time. It returns the byte
// offset flipped and fails for v1 files, which have no footer.
func (f *Faults) CorruptFooter(path string) (int64, error) {
	version, n, err := layout(path)
	if err != nil {
		return 0, err
	}
	lo := headerSize + 8*n
	hi := fileSize(version, n)
	if hi <= lo {
		return 0, fmt.Errorf("block: faults: %s (v%d) has no footer to corrupt", path, version)
	}
	return f.flipBit(path, lo, hi)
}

// TruncateTail removes between 1 and max bytes (RNG-chosen) from the end
// of the file — the torn tail a crashed non-atomic writer leaves behind.
// max is clamped so at least the header survives. It returns the number of
// bytes removed.
func (f *Faults) TruncateTail(path string, max int64) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	size := fi.Size()
	if size <= headerSize {
		return 0, fmt.Errorf("block: faults: %s too small to truncate (%d bytes)", path, size)
	}
	if max <= 0 || max > size-headerSize {
		max = size - headerSize
	}
	cut := 1 + f.r.Int63n(max)
	if err := os.Truncate(path, size-cut); err != nil {
		return 0, err
	}
	return cut, nil
}
