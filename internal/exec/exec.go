// Package exec is the unified execution runtime behind every ISLA
// execution mode. The paper's pipeline — pre-estimate, freeze a plan,
// run the Calculation phase per block, merge — is the same in batch,
// parallel, online, time-bounded and cluster deployments; only the
// scheduling and the consumption of per-block results differ. This
// package owns that common part: a worker-pool scheduler with
//
//   - deterministic per-task seed derivation (Seeds): all seeds are drawn
//     from the parent RNG in task order BEFORE any task is dispatched, so
//     the answer is bit-identical for every worker count;
//   - ordered result delivery: results surface in task order regardless
//     of completion order, through pluggable sinks (final merge, per-round
//     snapshots, wall-clock budget cutoff);
//   - context cancellation: the run aborts promptly when the caller's
//     context is cancelled or any task or sink fails.
//
// Adding a new execution scenario means writing a sink, not a new loop.
package exec

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"isla/internal/stats"
)

// Func computes the result of task i. Implementations that can block for
// long periods should honor ctx so cancellation stays prompt.
type Func[T any] func(ctx context.Context, i int) (T, error)

// Sink observes completed results strictly in task order, from a single
// goroutine. Returning a non-nil error aborts the run: in-flight tasks are
// cancelled and Run returns the results delivered so far with that error.
type Sink[T any] func(i int, v T) error

// ErrBudgetExceeded aborts a run whose wall-clock budget ran out; see
// Budget.
var ErrBudgetExceeded = errors.New("exec: wall-clock budget exceeded")

// Budget returns a sink that aborts the run with ErrBudgetExceeded once
// deadline has passed. Results delivered before the cutoff are kept, so the
// caller can merge a best-effort prefix; the first minResults results are
// always delivered so that prefix is never empty.
func Budget[T any](deadline time.Time, minResults int) Sink[T] {
	return func(i int, _ T) error {
		if i < minResults {
			return nil
		}
		if time.Now().After(deadline) {
			return ErrBudgetExceeded
		}
		return nil
	}
}

// Pool normalizes a Config-style worker knob: 0 selects sequential
// execution (one worker), negative selects one worker per CPU, positive is
// taken as-is.
func Pool(w int) int {
	switch {
	case w == 0:
		return 1
	case w < 0:
		return runtime.GOMAXPROCS(0)
	default:
		return w
	}
}

// Seeds derives n per-task RNG seeds by drawing from the parent generator
// in task order — the same stream as calling (*stats.RNG).Split once per
// task sequentially. Deriving every seed before dispatch is what makes a
// concurrent run bit-identical to the sequential one.
func Seeds(r *stats.RNG, n int) []uint64 {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = r.Uint64()
	}
	return seeds
}

// item is one task outcome in flight from a worker to the collector.
type item[T any] struct {
	i   int
	v   T
	err error
}

// Run executes tasks 0..n-1 over a pool of workers and returns their
// results in task order. workers is clamped to [1, n]. Sinks observe each
// result in task order as soon as it (and all its predecessors) completed.
//
// On any task error, sink error or context cancellation the run stops
// early and Run returns the in-order prefix of results delivered to the
// sinks so far, together with the error. A nil error guarantees exactly n
// results.
func Run[T any](ctx context.Context, workers, n int, fn Func[T], sinks ...Sink[T]) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	tasks := make(chan int)
	done := make(chan item[T], workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				if err := cctx.Err(); err != nil {
					done <- item[T]{i: i, err: err}
					continue
				}
				v, err := fn(cctx, i)
				done <- item[T]{i: i, v: v, err: err}
			}
		}()
	}
	go func() {
		defer close(tasks)
		for i := 0; i < n; i++ {
			select {
			case tasks <- i:
			case <-cctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(done)
	}()

	// Collect out of completion order, deliver in task order.
	out := make([]T, 0, n)
	pending := make(map[int]item[T])
	next := 0
	var runErr error
	for it := range done {
		pending[it.i] = it
		for runErr == nil {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if cur.err != nil {
				runErr = cur.err
				break
			}
			for _, s := range sinks {
				if err := s(next, cur.v); err != nil {
					runErr = err
					break
				}
			}
			if runErr != nil {
				break
			}
			out = append(out, cur.v)
			next++
		}
		if runErr != nil {
			cancel()
			for range done { // drain so workers can exit
			}
			return out, runErr
		}
	}
	if len(out) < n {
		// The feeder stopped before dispatching every task: the parent
		// context was cancelled without any task reporting the error.
		if err := ctx.Err(); err != nil {
			return out, err
		}
		return out, context.Canceled
	}
	return out, nil
}
