package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"isla/internal/stats"
)

func TestRunDeliversInTaskOrder(t *testing.T) {
	const n = 64
	// Make late tasks finish first so ordering must come from the
	// collector, not from completion timing.
	results, err := Run(context.Background(), 8, n, func(_ context.Context, i int) (int, error) {
		time.Sleep(time.Duration(n-i) * time.Microsecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, v := range results {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunSinksSeeOrderedPrefix(t *testing.T) {
	const n = 32
	var seen []int
	_, err := Run(context.Background(), 4, n,
		func(_ context.Context, i int) (int, error) { return i, nil },
		func(i int, v int) error {
			if i != v {
				t.Errorf("sink index %d carries value %d", i, v)
			}
			seen = append(seen, i)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("sink saw %d results, want %d", len(seen), n)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("sink call %d was index %d; delivery is unordered", i, v)
		}
	}
}

func TestRunResultsIdenticalAcrossWorkerCounts(t *testing.T) {
	const n = 40
	fn := func(_ context.Context, i int) (uint64, error) {
		// A task whose answer depends only on its derived seed.
		return stats.NewRNG(uint64(i) + 7).Uint64(), nil
	}
	base, err := Run(context.Background(), 1, n, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, runtime.NumCPU()} {
		got, err := Run(context.Background(), w, n, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", w, i, got[i], base[i])
			}
		}
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once atomic.Bool
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		_, err := Run(ctx, 4, 100, func(c context.Context, i int) (int, error) {
			if once.CompareAndSwap(false, true) {
				close(started)
			}
			<-c.Done() // block until cancelled
			return 0, c.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("got %v, want context.Canceled", err)
		}
	}()
	<-started
	cancel()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

func TestRunTaskErrorAbortsWithPrefix(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	results, err := Run(context.Background(), 4, 100, func(_ context.Context, i int) (int, error) {
		calls.Add(1)
		if i == 5 {
			return 0, fmt.Errorf("task 5: %w", boom)
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d delivered results, want the 5 before the failure", len(results))
	}
	for i, v := range results {
		if v != i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
	if calls.Load() == 100 {
		t.Error("error did not stop dispatch")
	}
}

func TestRunSinkErrorAborts(t *testing.T) {
	stop := errors.New("stop")
	results, err := Run(context.Background(), 2, 50,
		func(_ context.Context, i int) (int, error) { return i, nil },
		func(i int, _ int) error {
			if i == 3 {
				return stop
			}
			return nil
		})
	if !errors.Is(err, stop) {
		t.Fatalf("got %v, want stop", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
}

func TestBudgetSinkCutsOff(t *testing.T) {
	deadline := time.Now().Add(20 * time.Millisecond)
	results, err := Run(context.Background(), 1, 1000,
		func(_ context.Context, i int) (int, error) {
			time.Sleep(time.Millisecond)
			return i, nil
		},
		Budget[int](deadline, 1))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	if len(results) == 0 || len(results) == 1000 {
		t.Fatalf("got %d results, want a non-trivial prefix", len(results))
	}
}

func TestBudgetSinkAlwaysDeliversMinimum(t *testing.T) {
	// A deadline already in the past still lets minResults through.
	deadline := time.Now().Add(-time.Second)
	results, err := Run(context.Background(), 2, 10,
		func(_ context.Context, i int) (int, error) { return i, nil },
		Budget[int](deadline, 3))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want the guaranteed 3", len(results))
	}
}

func TestRunEmptyAndClamp(t *testing.T) {
	results, err := Run(context.Background(), 8, 0, func(_ context.Context, i int) (int, error) {
		return i, nil
	})
	if err != nil || len(results) != 0 {
		t.Fatalf("empty run: %v results, err %v", len(results), err)
	}
	// workers > n and workers < 1 must both work.
	for _, w := range []int{-3, 0, 99} {
		results, err = Run(context.Background(), w, 3, func(_ context.Context, i int) (int, error) {
			return i, nil
		})
		if err != nil || len(results) != 3 {
			t.Fatalf("workers=%d: %v results, err %v", w, len(results), err)
		}
	}
}

func TestPool(t *testing.T) {
	if got := Pool(0); got != 1 {
		t.Errorf("Pool(0) = %d, want 1", got)
	}
	if got := Pool(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Pool(-1) = %d, want GOMAXPROCS", got)
	}
	if got := Pool(7); got != 7 {
		t.Errorf("Pool(7) = %d, want 7", got)
	}
}

func TestSeedsMatchSequentialSplit(t *testing.T) {
	const n = 16
	parent := stats.NewRNG(42)
	seeds := Seeds(parent, n)

	// The reference discipline: one Split per task, sequentially.
	ref := stats.NewRNG(42)
	for i := 0; i < n; i++ {
		want := ref.Split()
		got := stats.NewRNG(seeds[i])
		for k := 0; k < 8; k++ {
			a, b := got.Uint64(), want.Uint64()
			if a != b {
				t.Fatalf("seed %d diverges from sequential Split at draw %d", i, k)
			}
		}
	}
	// And the parent generators end in the same state.
	if parent.Uint64() != ref.Uint64() {
		t.Fatal("parent RNG state diverged")
	}
}
