// Package groupspec parses the CLI grouped-table spec syntax. It lives
// apart from package workload so workload stays importable from low-level
// packages' tests: groupspec composes workload's distribution specs with
// group stores (which depend on the core estimator).
package groupspec

import (
	"fmt"
	"strings"

	"isla/internal/block"
	"isla/internal/group"
	"isla/internal/workload"
)

// FromSpec materializes the grouped table-spec syntax of the
// islacli/islaserv -gengroup flag:
//
//	"name=column;key:dist:params;key2:dist:params"
//
// The first semicolon-separated field names the group column; each later
// field is "<group key>:<dist spec>" where the dist spec reuses the
// workload.FromSpec syntax (normal:mu=100,sigma=20,n=100000,blocks=10, …).
// It returns the table name and the grouped store.
func FromSpec(spec string) (string, *group.Store, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok {
		return "", nil, fmt.Errorf("workload: bad grouped spec %q (want name=column;key:dist:params;...)", spec)
	}
	parts := strings.Split(rest, ";")
	if len(parts) < 2 {
		return "", nil, fmt.Errorf("workload: grouped spec %q names no groups", spec)
	}
	column := strings.TrimSpace(parts[0])
	groups := make(map[string]*block.Store, len(parts)-1)
	for _, part := range parts[1:] {
		key, dspec, ok := strings.Cut(part, ":")
		if !ok {
			return "", nil, fmt.Errorf("workload: bad group %q in %q (want key:dist:params)", part, spec)
		}
		key = strings.TrimSpace(key)
		if _, dup := groups[key]; dup {
			return "", nil, fmt.Errorf("workload: duplicate group %q in %q", key, spec)
		}
		_, store, err := workload.FromSpec("g=" + dspec)
		if err != nil {
			return "", nil, fmt.Errorf("workload: group %q: %w", key, err)
		}
		groups[key] = store
	}
	g, err := group.NewStore(column, groups)
	if err != nil {
		return "", nil, err
	}
	return name, g, nil
}
