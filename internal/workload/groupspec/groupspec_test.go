package groupspec

import "testing"

func TestFromSpec(t *testing.T) {
	name, g, err := FromSpec("sales=region;east:normal:mu=100,sigma=20,n=5000,blocks=4;west:exp:gamma=0.5,n=3000,blocks=2")
	if err != nil {
		t.Fatal(err)
	}
	if name != "sales" || g.Column() != "region" {
		t.Fatalf("name=%q column=%q", name, g.Column())
	}
	keys := g.Groups()
	if len(keys) != 2 || keys[0] != "east" || keys[1] != "west" {
		t.Fatalf("keys = %v", keys)
	}
	if g.TotalLen() != 8000 {
		t.Fatalf("total = %d", g.TotalLen())
	}
	for _, bad := range []string{
		"noeq",
		"t=colonly",
		"t=c;keyonly",
		"t=c;a:normal:n=10;a:normal:n=10",
		"t=c;a:nosuchdist:n=10",
	} {
		if _, _, err := FromSpec(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
