// Package workload generates every dataset the paper's evaluation uses.
//
// Synthetic distributions (normal / exponential / uniform / non-i.i.d.
// multi-block) are generated exactly as described in §VIII. The three
// resources we cannot ship — the TPC-H 100 GB LINEITEM column, the
// census-income salary file and the NYC TLC trip records — are replaced by
// generators that reproduce their published size (scaled), mean and shape;
// DESIGN.md documents each substitution and why it preserves the relevant
// behaviour.
package workload

import (
	"fmt"

	"isla/internal/block"
	"isla/internal/stats"
)

// Spec describes a dataset to generate: a distribution, a size and a block
// count.
type Spec struct {
	Name   string
	Dist   stats.Dist
	N      int
	Blocks int
	Seed   uint64
}

// Generate materializes the spec into an in-memory block store and returns
// it with the distribution's exact mean (the golden truth for accuracy
// experiments).
func Generate(sp Spec) (*block.Store, float64, error) {
	if sp.N <= 0 {
		return nil, 0, fmt.Errorf("workload: size %d must be positive", sp.N)
	}
	if sp.Blocks <= 0 {
		return nil, 0, fmt.Errorf("workload: block count %d must be positive", sp.Blocks)
	}
	if sp.Dist == nil {
		return nil, 0, fmt.Errorf("workload: nil distribution")
	}
	r := stats.NewRNG(sp.Seed)
	data := make([]float64, sp.N)
	for i := range data {
		data[i] = sp.Dist.Sample(r)
	}
	return block.Partition(data, sp.Blocks), sp.Dist.Mean(), nil
}

// Normal generates the paper's default workload: N(mu, sigma²), the
// distribution behind Fig. 6 and Tables III–V.
func Normal(mu, sigma float64, n, blocks int, seed uint64) (*block.Store, float64, error) {
	return Generate(Spec{
		Name:   fmt.Sprintf("normal-%g-%g", mu, sigma),
		Dist:   stats.Normal{Mu: mu, Sigma: sigma},
		N:      n,
		Blocks: blocks,
		Seed:   seed,
	})
}

// Exponential generates the Table VI workload Exp(gamma) with true mean
// 1/gamma.
func Exponential(gamma float64, n, blocks int, seed uint64) (*block.Store, float64, error) {
	return Generate(Spec{
		Name:   fmt.Sprintf("exp-%g", gamma),
		Dist:   stats.Exponential{Gamma: gamma},
		N:      n,
		Blocks: blocks,
		Seed:   seed,
	})
}

// UniformRange generates the Table VII workload U[lo, hi].
func UniformRange(lo, hi float64, n, blocks int, seed uint64) (*block.Store, float64, error) {
	return Generate(Spec{
		Name:   fmt.Sprintf("uniform-%g-%g", lo, hi),
		Dist:   stats.Uniform{Lo: lo, Hi: hi},
		N:      n,
		Blocks: blocks,
		Seed:   seed,
	})
}

// BlockSpec describes one block of a non-i.i.d. workload.
type BlockSpec struct {
	Dist stats.Dist
	N    int
}

// NonIID generates the §VIII-D workload: each block drawn from its own
// distribution. It returns the store and the exact overall mean
// Σ n_i·µ_i / Σ n_i.
func NonIID(specs []BlockSpec, seed uint64) (*block.Store, float64, error) {
	if len(specs) == 0 {
		return nil, 0, fmt.Errorf("workload: no block specs")
	}
	r := stats.NewRNG(seed)
	blocks := make([]block.Block, len(specs))
	var weighted float64
	var total int64
	for i, sp := range specs {
		if sp.N <= 0 {
			return nil, 0, fmt.Errorf("workload: block %d size %d must be positive", i, sp.N)
		}
		data := make([]float64, sp.N)
		for j := range data {
			data[j] = sp.Dist.Sample(r)
		}
		blocks[i] = block.NewMemBlock(i, data)
		weighted += sp.Dist.Mean() * float64(sp.N)
		total += int64(sp.N)
	}
	return block.NewStore(blocks...), weighted / float64(total), nil
}

// PaperNonIID returns the exact five-block configuration of §VIII-D —
// N(100,20²), N(50,10²), N(80,30²), N(150,60²), N(120,40²) — with perBlock
// values in each block (the paper uses 10⁸; scale to taste). The true mean
// is 100.
func PaperNonIID(perBlock int, seed uint64) (*block.Store, float64, error) {
	return NonIID([]BlockSpec{
		{Dist: stats.Normal{Mu: 100, Sigma: 20}, N: perBlock},
		{Dist: stats.Normal{Mu: 50, Sigma: 10}, N: perBlock},
		{Dist: stats.Normal{Mu: 80, Sigma: 30}, N: perBlock},
		{Dist: stats.Normal{Mu: 150, Sigma: 60}, N: perBlock},
		{Dist: stats.Normal{Mu: 120, Sigma: 40}, N: perBlock},
	}, seed)
}
