package workload

import (
	"math"

	"isla/internal/block"
	"isla/internal/stats"
)

// Salary generates a census-income-like wage column (§VIII-G substitution).
//
// The real extract (UCI Census-Income KDD, 1994–95 CPS) has 299,285 rows
// with mean 1740.38 and a very heavy right tail over a large mass of zero
// and low earners. The generator reproduces that structure as a mixture:
// a ~28% zero/near-zero mass, a log-normal body, and a thin extreme tail.
// Component weights and parameters were tuned so the exact mixture mean is
// ≈1740 and the shape (zero-inflation + right skew) matches the published
// summary. The absolute numbers are not the point — the §VIII-G comparison
// only needs the skewed shape that separates ISLA from MV/MVB/US/STS.
func Salary(n, blocks int, seed uint64) (*block.Store, float64, error) {
	mix := stats.NewMixture(
		// Non-earners: wage 0–20.
		stats.Component{Weight: 0.28, Dist: stats.Uniform{Lo: 0, Hi: 20}},
		// The working body: log-normal around ~e^7.2 ≈ 1300.
		stats.Component{Weight: 0.64, Dist: stats.LogNormal{Mu: 7.2, Sigma: 0.75}},
		// High earners: a stretched tail.
		stats.Component{Weight: 0.08, Dist: stats.LogNormal{Mu: 8.75, Sigma: 0.55}},
	)
	return Generate(Spec{Name: "salary", Dist: mix, N: n, Blocks: blocks, Seed: seed})
}

// SalaryPaperSize mirrors the real extract's row count (299,285) over 10
// blocks, the configuration of the paper's experiment.
func SalaryPaperSize(seed uint64) (*block.Store, float64, error) {
	return Salary(299285, 10, seed)
}

// TLCTrips generates a TLC-trip-distance-like column (§VIII-G
// substitution).
//
// The paper uses yellow-cab trip distances of January 2016 (10,906,858 rows,
// values ×1000, mean 4648.2) and observes the set is highly skewed with the
// very small and very large values clustered. The generator reproduces
// that: a dominant short-trip cluster, a mid-range commute cluster, and a
// clustered long-haul tail (airport runs), scaled ×1000 like the paper.
func TLCTrips(n, blocks int, seed uint64) (*block.Store, float64, error) {
	mix := stats.NewMixture(
		// Short hops, tightly clustered near 1–2 miles (×1000).
		stats.Component{Weight: 0.55, Dist: stats.LogNormal{Mu: 7.3, Sigma: 0.45}},
		// Mid-range rides.
		stats.Component{Weight: 0.35, Dist: stats.LogNormal{Mu: 8.35, Sigma: 0.40}},
		// Long-haul cluster (airport trips ~17–20 miles ×1000).
		stats.Component{Weight: 0.10, Dist: stats.Normal{Mu: 18200, Sigma: 1500}},
	)
	return Generate(Spec{Name: "tlc", Dist: mix, N: n, Blocks: blocks, Seed: seed})
}

// TPCHLineitem generates an l_extendedprice-like column (§VIII-F
// substitution for the TPC-H 100 GB run).
//
// In TPC-H, l_extendedprice = l_quantity × p_retailprice where quantity is
// uniform 1..50 and the part retail price ramps roughly uniformly over
// ~[900, 2100). The product of those two uniforms gives the characteristic
// broad right-leaning hump of the real column. scaleRows controls the row
// count (the paper's 100 GB run has 600M lineitem rows; pick what fits).
func TPCHLineitem(rows, blocks int, seed uint64) (*block.Store, float64, error) {
	d := lineitemDist{}
	return Generate(Spec{Name: "tpch-lineitem", Dist: d, N: rows, Blocks: blocks, Seed: seed})
}

// lineitemDist is the product distribution quantity × retailprice.
type lineitemDist struct{}

func (lineitemDist) Sample(r *stats.RNG) float64 {
	qty := float64(1 + r.Intn(50))
	price := 900 + 1200*r.Float64()
	return qty * price
}

// Mean returns E[qty]·E[price] = 25.5 · 1500 (independent factors).
func (lineitemDist) Mean() float64 { return 25.5 * 1500 }

// StdDev returns the exact product-of-independents standard deviation.
func (lineitemDist) StdDev() float64 {
	// Var(XY) = E[X²]E[Y²] − (E[X]E[Y])² for independent X, Y.
	// X uniform on {1..50}: E[X]=25.5, E[X²]=(50+1)(2·50+1)/6 = 858.5.
	// Y uniform on [900,2100): E[Y]=1500, Var(Y)=1200²/12=120000,
	// E[Y²]=1500²+120000.
	ex2 := 858.5
	ey2 := 1500.0*1500.0 + 120000.0
	v := ex2*ey2 - (25.5*1500.0)*(25.5*1500.0)
	return math.Sqrt(v)
}

func (lineitemDist) String() string { return "TPCH-lineitem(qty×price)" }
