package workload

import (
	"fmt"
	"strconv"
	"strings"

	"isla/internal/block"
)

// FromSpec materializes the CLI table-spec syntax shared by islacli and
// islaserv: "name=dist:key=val,..." with distributions normal (mu, sigma),
// exp (gamma), uniform (lo, hi), salary, tlc, tpch and noniid, plus the
// common n, blocks and seed parameters. It returns the table name and its
// generated store.
func FromSpec(spec string) (string, *block.Store, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok {
		return "", nil, fmt.Errorf("workload: bad table spec %q (want name=dist:params)", spec)
	}
	dist, params, _ := strings.Cut(rest, ":")
	kv := map[string]float64{"mu": 100, "sigma": 20, "gamma": 0.1, "lo": 1, "hi": 199,
		"n": 1_000_000, "blocks": 10, "seed": 1}
	if params != "" {
		for _, p := range strings.Split(params, ",") {
			k, v, ok := strings.Cut(p, "=")
			if !ok {
				return "", nil, fmt.Errorf("workload: bad param %q in %q", p, spec)
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return "", nil, fmt.Errorf("workload: bad value %q in %q", v, spec)
			}
			kv[strings.TrimSpace(k)] = f
		}
	}
	n, blocks, seed := int(kv["n"]), int(kv["blocks"]), uint64(kv["seed"])
	var (
		store *block.Store
		err   error
	)
	switch strings.ToLower(dist) {
	case "normal", "":
		store, _, err = Normal(kv["mu"], kv["sigma"], n, blocks, seed)
	case "exp", "exponential":
		store, _, err = Exponential(kv["gamma"], n, blocks, seed)
	case "uniform":
		store, _, err = UniformRange(kv["lo"], kv["hi"], n, blocks, seed)
	case "salary":
		store, _, err = Salary(n, blocks, seed)
	case "tlc":
		store, _, err = TLCTrips(n, blocks, seed)
	case "tpch":
		store, _, err = TPCHLineitem(n, blocks, seed)
	case "noniid":
		store, _, err = PaperNonIID(n/5, seed)
	default:
		return "", nil, fmt.Errorf("workload: unknown distribution %q", dist)
	}
	if err != nil {
		return "", nil, err
	}
	return name, store, nil
}
