package workload

import (
	"math"
	"testing"

	"isla/internal/stats"
)

func TestGenerateValidation(t *testing.T) {
	d := stats.Normal{Mu: 0, Sigma: 1}
	if _, _, err := Generate(Spec{Dist: d, N: 0, Blocks: 1}); err == nil {
		t.Error("zero size accepted")
	}
	if _, _, err := Generate(Spec{Dist: d, N: 10, Blocks: 0}); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, _, err := Generate(Spec{N: 10, Blocks: 1}); err == nil {
		t.Error("nil dist accepted")
	}
}

func TestNormalWorkload(t *testing.T) {
	s, truth, err := Normal(100, 20, 100000, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if truth != 100 {
		t.Fatalf("declared truth = %v", truth)
	}
	if s.NumBlocks() != 10 || s.TotalLen() != 100000 {
		t.Fatalf("store shape %d/%d", s.NumBlocks(), s.TotalLen())
	}
	mean, _ := s.ExactMean()
	if math.Abs(mean-100) > 0.3 {
		t.Fatalf("empirical mean %v far from 100", mean)
	}
}

func TestExponentialWorkload(t *testing.T) {
	s, truth, err := Exponential(0.05, 100000, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if truth != 20 {
		t.Fatalf("truth = %v, want 20", truth)
	}
	mean, _ := s.ExactMean()
	if math.Abs(mean-20) > 0.5 {
		t.Fatalf("empirical mean %v far from 20", mean)
	}
}

func TestUniformWorkload(t *testing.T) {
	s, truth, err := UniformRange(1, 199, 100000, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if truth != 100 {
		t.Fatalf("truth = %v, want 100", truth)
	}
	mn, mx := math.Inf(1), math.Inf(-1)
	s.Scan(func(v float64) error {
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
		return nil
	})
	if mn < 1 || mx >= 199 {
		t.Fatalf("range [%v, %v] escapes [1, 199)", mn, mx)
	}
}

func TestNonIIDWorkload(t *testing.T) {
	s, truth, err := PaperNonIID(20000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if truth != 100 {
		t.Fatalf("paper non-iid truth = %v, want 100", truth)
	}
	if s.NumBlocks() != 5 || s.TotalLen() != 100000 {
		t.Fatalf("store shape %d/%d", s.NumBlocks(), s.TotalLen())
	}
	mean, _ := s.ExactMean()
	if math.Abs(mean-100) > 0.6 {
		t.Fatalf("empirical mean %v far from 100", mean)
	}
}

func TestNonIIDValidation(t *testing.T) {
	if _, _, err := NonIID(nil, 1); err == nil {
		t.Error("empty specs accepted")
	}
	if _, _, err := NonIID([]BlockSpec{{Dist: stats.Normal{}, N: 0}}, 1); err == nil {
		t.Error("zero-size block accepted")
	}
}

func TestSalaryShape(t *testing.T) {
	s, truth, err := Salary(200000, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The declared mean should be near the published 1740.38 (±10%: the
	// mixture was tuned to the published value, not fit to data).
	if math.Abs(truth-1740)/1740 > 0.1 {
		t.Fatalf("salary mixture mean %v strays from 1740", truth)
	}
	// Shape: substantial zero/low mass and a heavy right tail.
	var lows, highs, n int
	s.Scan(func(v float64) error {
		n++
		if v < 25 {
			lows++
		}
		if v > 10000 {
			highs++
		}
		return nil
	})
	if frac := float64(lows) / float64(n); frac < 0.2 || frac > 0.4 {
		t.Fatalf("low-earner fraction %v outside [0.2, 0.4]", frac)
	}
	if highs == 0 {
		t.Fatal("no heavy right tail")
	}
}

func TestSalaryPaperSize(t *testing.T) {
	s, _, err := SalaryPaperSize(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalLen() != 299285 {
		t.Fatalf("rows = %d, want 299285", s.TotalLen())
	}
}

func TestTLCShape(t *testing.T) {
	s, truth, err := TLCTrips(200000, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Mean near the published 4648.2 (±15%).
	if math.Abs(truth-4648)/4648 > 0.15 {
		t.Fatalf("tlc mixture mean %v strays from 4648", truth)
	}
	// Shape: clustered small values AND clustered large values (the
	// paper's "too big and too small values are highly clustered").
	h := stats.NewHistogram(0, 25000, 25)
	s.Scan(func(v float64) error { h.Add(v); return nil })
	longHaul := 0.0
	for i := 15; i < 22; i++ { // 15000–22000 band
		longHaul += h.Fraction(i)
	}
	if longHaul < 0.05 {
		t.Fatalf("long-haul cluster fraction %v too small", longHaul)
	}
}

func TestTPCHLineitem(t *testing.T) {
	s, truth, err := TPCHLineitem(200000, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if truth != 25.5*1500 {
		t.Fatalf("declared mean %v", truth)
	}
	mean, _ := s.ExactMean()
	if math.Abs(mean-truth)/truth > 0.02 {
		t.Fatalf("empirical mean %v vs declared %v", mean, truth)
	}
	// Declared stddev should match empirical within a few percent.
	var m stats.Moments
	s.Scan(func(v float64) error { m.Add(v); return nil })
	want := lineitemDist{}.StdDev()
	if math.Abs(m.StdDev()-want)/want > 0.05 {
		t.Fatalf("empirical stddev %v vs declared %v", m.StdDev(), want)
	}
}
