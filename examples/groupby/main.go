// Groupby: approximate GROUP BY AVG (the §VII-D extension). Sales rows are
// keyed by region; each large group runs ISLA with the shared precision
// target while tiny groups are scanned exactly — the estimator's overhead
// never exceeds the cost of just reading a small group.
//
//	go run ./examples/groupby
package main

import (
	"fmt"
	"log"

	"isla"
	"isla/internal/stats"
)

func main() {
	r := stats.NewRNG(9)
	regions := []struct {
		name      string
		mu, sigma float64
		rows      int
	}{
		{"north", 120, 25, 800_000},
		{"south", 95, 18, 600_000},
		{"east", 140, 30, 400_000},
		{"west", 80, 12, 500_000},
		{"hq", 300, 5, 150}, // tiny group → exact scan
	}
	var rows []isla.GroupRow
	truth := map[string]float64{}
	for _, reg := range regions {
		d := stats.Normal{Mu: reg.mu, Sigma: reg.sigma}
		var m stats.Moments
		for i := 0; i < reg.rows; i++ {
			v := d.Sample(r)
			rows = append(rows, isla.GroupRow{Group: reg.name, Value: v})
			m.Add(v)
		}
		truth[reg.name] = m.Mean()
	}

	cfg := isla.DefaultConfig()
	cfg.Precision = 0.5
	cfg.Seed = 27
	results, err := isla.GroupAVG(rows, 8, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("region  rows     estimate   exact      abs err   mode      samples")
	for _, gr := range results {
		mode := "sampled"
		if gr.Exact {
			mode = "exact"
		}
		fmt.Printf("%-6s  %7d  %9.4f  %9.4f  %8.4f  %-8s  %d\n",
			gr.Group, gr.Count, gr.Estimate, truth[gr.Group],
			abs(gr.Estimate-truth[gr.Group]), mode, gr.Samples)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
