// Filestore: the paper's on-disk deployment — a column written as ISLB v2
// block files (summary footers included), reopened as a store and
// aggregated without ever loading the data into memory. Where the platform
// supports it the files are memory-mapped: sampling is a zero-copy slice
// gather out of the page cache, and the exact mean below is answered from
// the persisted footers without a scan. On other platforms the store falls
// back to batched positioned reads. Release the mappings/handles with
// Close when done.
//
//	go run ./examples/filestore
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"isla"
	"isla/internal/stats"
)

func main() {
	dir, err := os.MkdirTemp("", "isla-filestore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// One million readings ~ N(100, 20²), written as 8 block files.
	r := stats.NewRNG(42)
	dist := stats.Normal{Mu: 100, Sigma: 20}
	values := make([]float64, 1_000_000)
	for i := range values {
		values[i] = dist.Sample(r)
	}
	prefix := filepath.Join(dir, "readings")
	if _, err := isla.WriteFiles(prefix, values, 8); err != nil {
		log.Fatal(err)
	}

	// Reopen the files as a store — the handles stay open until Close.
	paths := make([]string, 8)
	for i := range paths {
		paths[i] = fmt.Sprintf("%s.%03d", prefix, i)
	}
	store, err := isla.OpenFiles(paths...)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	cfg := isla.DefaultConfig()
	cfg.Precision = 0.1
	cfg.Seed = 7
	res, err := isla.Estimate(store, cfg)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := store.ExactMean()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file-backed AVG : %.4f  (±%.2f at %.0f%% confidence)\n",
		res.Estimate, res.CI.HalfWidth, res.CI.Confidence*100)
	fmt.Printf("exact AVG       : %.4f\n", exact)
	fmt.Printf("samples touched : %d of %d rows (%.2f%%)\n",
		res.TotalSamples, store.TotalLen(),
		100*float64(res.TotalSamples)/float64(store.TotalLen()))
}
