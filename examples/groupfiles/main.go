// Groupfiles: persist a grouped table as per-group partitioned ISLB v2
// block files plus a manifest, reopen it zero-copy, and run grouped and
// filtered SQL against it — the file-backed face of the §VII-D GROUP BY
// extension. The same manifest serves islacli/islaserv via -loadgroup.
//
//	go run ./examples/groupfiles
package main

import (
	"fmt"
	"log"
	"os"

	"isla"
	"isla/internal/stats"
)

func main() {
	r := stats.NewRNG(1)
	var rows []isla.GroupRow
	for i := 0; i < 200_000; i++ {
		rows = append(rows, isla.GroupRow{Group: "east", Value: 100 + 20*r.NormFloat64()})
		rows = append(rows, isla.GroupRow{Group: "west", Value: 50 + 10*r.NormFloat64()})
		if i%4 == 0 {
			rows = append(rows, isla.GroupRow{Group: "north", Value: 200 + 40*r.NormFloat64()})
		}
	}

	dir, err := os.MkdirTemp("", "isla-groups-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	manifest, err := isla.WriteGroupFiles(dir, "region", rows, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote grouped table to %s\n", manifest)

	g, err := isla.OpenGroupManifest(manifest, isla.ModeAuto)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()

	db := isla.NewDB()
	db.RegisterGrouped("sales", g)
	db.EnablePlanCache(0)

	for _, sql := range []string{
		"SELECT AVG(v) FROM sales GROUP BY region WITH PRECISION 0.5 SEED 7",
		"SELECT AVG(v) FROM sales WHERE v > 60 GROUP BY region WITH PRECISION 0.5 SEED 7",
		"SELECT COUNT(v) FROM sales GROUP BY region",
	} {
		res, err := db.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", sql)
		for _, gr := range res.Groups {
			if gr.Err != "" {
				fmt.Printf("  %-8s ERROR %s\n", gr.Group, gr.Err)
				continue
			}
			fmt.Printf("  %-8s = %10.4f", gr.Group, gr.Value)
			if gr.CI != nil {
				fmt.Printf("  ±%.4g", gr.CI.HalfWidth)
			}
			if gr.Filter != nil {
				fmt.Printf("  sel=%.3f", gr.Filter.Selectivity)
			}
			if gr.PilotCached {
				fmt.Printf("  (cached pilot)")
			}
			fmt.Printf("  [rows=%d samples=%d]\n", gr.Rows, gr.Samples)
		}
	}
}
