// Quickstart: register a column, run an approximate AVG with a precision
// guarantee, and compare against the exact scan.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"isla"
	"isla/internal/stats"
)

func main() {
	// One million sensor readings ~ N(100, 20²), as in the paper's default
	// workload, partitioned into 10 blocks.
	r := stats.NewRNG(42)
	dist := stats.Normal{Mu: 100, Sigma: 20}
	values := make([]float64, 1_000_000)
	for i := range values {
		values[i] = dist.Sample(r)
	}

	db := isla.NewDB()
	db.RegisterSlice("readings", values, 10)

	// Approximate: the answer carries a ±0.1 confidence interval at 95%.
	approx, err := db.Query("SELECT AVG(v) FROM readings WITH PRECISION 0.1")
	if err != nil {
		log.Fatal(err)
	}
	// Exact, for comparison (full scan).
	exact, err := db.Query("SELECT AVG(v) FROM readings METHOD EXACT")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("approximate AVG : %.4f  (±%.2f at %.0f%% confidence)\n",
		approx.Value, approx.CI.HalfWidth, approx.CI.Confidence*100)
	fmt.Printf("exact AVG       : %.4f\n", exact.Value)
	fmt.Printf("absolute error  : %.4f\n", abs(approx.Value-exact.Value))
	fmt.Printf("samples touched : %d of %d rows (%.2f%%)  in %s (exact scan: %s)\n",
		approx.Samples, approx.Rows,
		100*float64(approx.Samples)/float64(approx.Rows),
		approx.Duration.Round(10000), exact.Duration.Round(10000))

	// SUM comes for free: AVG × M.
	sum, err := db.Query("SELECT SUM(v) FROM readings WITH PRECISION 0.1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approximate SUM : %.1f\n", sum.Value)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
