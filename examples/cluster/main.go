// Cluster: the paper's §VII-E deployment over real sockets. Three worker
// "machines" (in-process here, but speaking net/rpc over TCP loopback —
// the same code path as separate hosts) each own a share of the blocks; a
// coordinator runs Pre-estimation, ships the frozen boundaries to the
// workers, and gathers only the O(1) per-region power sums per block.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"isla"
	"isla/internal/stats"
)

func main() {
	// 1.2M rows ~ N(100, 20²) in 12 blocks, 4 blocks per worker.
	r := stats.NewRNG(21)
	d := stats.Normal{Mu: 100, Sigma: 20}
	values := make([]float64, 1_200_000)
	for i := range values {
		values[i] = d.Sample(r)
	}
	store := isla.Partition(values, 12)
	blocks := store.Blocks()

	var addrs []string
	for w := 0; w < 3; w++ {
		worker := isla.NewWorker(blocks[w*4 : (w+1)*4]...)
		l, err := worker.ListenAndServe("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		addrs = append(addrs, l.Addr().String())
		fmt.Printf("worker %d serving blocks %d–%d on %s\n", w, w*4, w*4+3, l.Addr())
	}

	cfg := isla.DefaultConfig()
	cfg.Precision = 0.2
	cfg.Seed = 33
	coord := isla.NewCoordinator(cfg)
	for _, a := range addrs {
		if err := coord.Connect(a); err != nil {
			log.Fatal(err)
		}
	}
	defer coord.Close()

	res, err := coord.Run()
	if err != nil {
		log.Fatal(err)
	}
	exact, err := store.ExactMean()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncluster AVG: %.4f (±%.2f at %.0f%%)   exact: %.4f   error: %.4f\n",
		res.Estimate, res.CI.HalfWidth, res.CI.Confidence*100, exact, abs(res.Estimate-exact))
	fmt.Printf("samples: %d of %d rows; per-block wire payload: 8 numbers + counts\n",
		res.TotalSamples, coord.TotalLen())
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
