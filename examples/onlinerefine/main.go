// Onlinerefine: the paper's online-aggregation mode (§VII-A). The first
// answer returns quickly at loose precision; each refinement round draws
// more samples into the stored paramS/paramL power sums — no sample is ever
// kept — and the confidence interval tightens until the analyst is
// satisfied.
//
//	go run ./examples/onlinerefine
package main

import (
	"fmt"
	"log"

	"isla"
	"isla/internal/stats"
)

func main() {
	// Two million order amounts ~ N(100, 20²) across 10 blocks.
	r := stats.NewRNG(3)
	d := stats.Normal{Mu: 100, Sigma: 20}
	values := make([]float64, 2_000_000)
	for i := range values {
		values[i] = d.Sample(r)
	}
	store := isla.Partition(values, 10)
	exact, err := store.ExactMean()
	if err != nil {
		log.Fatal(err)
	}

	cfg := isla.DefaultConfig()
	cfg.Precision = 2.0 // loose first answer, refined below
	cfg.Seed = 19
	sess, err := isla.NewSession(store, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("exact mean: %.4f\n\n", exact)
	fmt.Println("round  estimate   ±precision  samples   abs err")
	for round := 1; round <= 6; round++ {
		snap, err := sess.Refine(1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %9.4f  %9.4f  %7d  %8.4f\n",
			snap.Round, snap.Result.Estimate, snap.EffectivePrecision,
			sess.TotalSamples(), abs(snap.Result.Estimate-exact))
	}
	fmt.Println("\nthe interval tightens as 1/√samples while the state per block")
	fmt.Println("stays four numbers (count, Σa, Σa², Σa³) per region; every round")
	fmt.Println("resumes from the stored sums instead of re-reading old samples.")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
