// Warehouse: the paper's distributed scenario (§VII-C, §VII-E). A
// transnational corporation stores sales in five regional "subsidiaries"
// with very different local distributions (non-i.i.d. blocks); the
// coordinator estimates the global average with per-block data boundaries,
// variance-aware sampling rates and parallel per-block workers.
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"log"

	"isla"
	"isla/internal/block"
	"isla/internal/stats"
)

func main() {
	// Five subsidiaries: different means AND different dispersions — the
	// exact configuration of the paper's §VIII-D experiment.
	regions := []struct {
		name      string
		mu, sigma float64
		rows      int
	}{
		{"americas", 100, 20, 400_000},
		{"emea", 50, 10, 400_000},
		{"apac", 80, 30, 400_000},
		{"latam", 150, 60, 400_000},
		{"anz", 120, 40, 400_000},
	}
	r := stats.NewRNG(7)
	blocks := make([]isla.Block, len(regions))
	for i, reg := range regions {
		d := stats.Normal{Mu: reg.mu, Sigma: reg.sigma}
		data := make([]float64, reg.rows)
		for j := range data {
			data[j] = d.Sample(r)
		}
		blocks[i] = block.NewMemBlock(i, data)
		fmt.Printf("subsidiary %-9s N(%3.0f, %2.0f²)  %d rows\n", reg.name, reg.mu, reg.sigma, reg.rows)
	}
	store := block.NewStore(blocks...)

	cfg := isla.DefaultConfig()
	cfg.Precision = 0.5
	cfg.PerBlockBounds = true     // per-subsidiary data boundaries (§VII-C)
	cfg.VarianceAwareRates = true // dispersed subsidiaries sampled more
	cfg.Seed = 11

	// Parallel per-block execution — same answer as sequential for a seed.
	res, err := isla.EstimateParallel(store, cfg)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := store.ExactMean()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nglobal approximate AVG: %.4f (±%.2f)\n", res.Estimate, res.CI.HalfWidth)
	fmt.Printf("global exact AVG:       %.4f\n", exact)
	fmt.Printf("total samples:          %d of %d rows\n\n", res.TotalSamples, store.TotalLen())

	fmt.Println("per-subsidiary partial answers (variance-aware sample quotas):")
	for i, br := range res.PerBlock {
		fmt.Printf("  %-9s partial=%8.4f  samples=%6d  case=%v\n",
			regions[i].name, br.Answer, br.Samples, br.Detail.Case)
	}
}
