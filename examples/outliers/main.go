// Outliers: the paper's real-data showcase (§VIII-G) on a taxi-trip-like
// column where the very small and very large values cluster. The
// measure-biased estimators (MV and its boundary-aware variant MVB) are
// systematically wrong on such data by construction — MV converges to
// E[X²]/E[X], not E[X] — while ISLA's region boundaries and leverages keep
// its answer anchored near the truth. The example also runs the MAX
// extension (§VII-D) over the same store.
//
// (A plain uniform sample is unbiased and competitive on the mean at this
// budget; the US collapse the paper reports on TLC is not reproducible from
// first principles — see EXPERIMENTS.md. The decisive comparison here is
// against the measure-biased family, which is the paper's Table VI/VII
// story as well.)
//
//	go run ./examples/outliers
package main

import (
	"fmt"
	"log"

	"isla"
	"isla/internal/workload"
)

func main() {
	store, _, err := workload.TLCTrips(2_000_000, 10, 5)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := store.ExactMean()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trip-distance-like column: %d rows, exact mean %.2f\n\n", store.TotalLen(), exact)

	db := isla.NewDB()
	db.RegisterStore("trips", store)

	fmt.Println("method  estimate      abs err     rel err   samples")
	for _, method := range []string{"ISLA", "MV", "MVB", "US", "STS"} {
		q := fmt.Sprintf("SELECT AVG(d) FROM trips WITH PRECISION 25 METHOD %s SEED 9", method)
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s  %10.2f  %10.2f  %7.2f%%  %10d\n",
			method, res.Value, abs(res.Value-exact),
			100*abs(res.Value-exact)/exact, res.Samples)
	}
	fmt.Println("\nMV lands near E[X²]/E[X] — far above the mean on clustered data;")
	fmt.Println("MVB inherits a milder version of the same bias; ISLA stays anchored.")

	// Approximate MAX with leverage-based per-block sampling rates.
	trueMax, err := isla.ExactExtreme(store, isla.MAX)
	if err != nil {
		log.Fatal(err)
	}
	approxMax, err := isla.EstimateExtreme(store, isla.MAX, isla.ExtremeConfig{
		SampleRate: 0.1,
		Seed:       13,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMAX: exact %.2f, approximate %.2f (10%% sample, %d draws)\n",
		trueMax, approxMax.Value, approxMax.Samples)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
