package isla

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"
	"time"

	"isla/internal/block"
	"isla/internal/core"
	"isla/internal/online"
	"isla/internal/timebound"
	"isla/internal/workload"
)

// scalarBlock hides a block's BatchSampler capability, forcing every
// consumer through the generic per-value fallback — the pre-batching
// scalar path.
type scalarBlock struct{ block.Block }

// scalarize wraps every block of s so only the scalar path is reachable.
func scalarize(s *block.Store) *block.Store {
	blocks := s.Blocks()
	wrapped := make([]block.Block, len(blocks))
	for i, b := range blocks {
		wrapped[i] = scalarBlock{b}
	}
	return block.NewStore(wrapped...)
}

// equivStores builds the canonical workload as an in-memory store, a
// pread file store and (where supported) a memory-mapped file store over
// identical values — the three storage paths the determinism contract
// spans.
func equivStores(t *testing.T) map[string]*block.Store {
	t.Helper()
	mem, _, err := workload.Normal(100, 20, 200_000, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	var data []float64
	if err := mem.Scan(func(v float64) error { data = append(data, v); return nil }); err != nil {
		t.Fatal(err)
	}
	prefix := filepath.Join(t.TempDir(), "col")
	pread, err := block.WritePartitionedMode(prefix, data, 8, block.ModePread)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pread.Close() })
	stores := map[string]*block.Store{"mem": mem, "pread": pread}
	if block.MmapSupported() {
		paths := make([]string, 8)
		for i := range paths {
			paths[i] = fmt.Sprintf("%s.%03d", prefix, i)
		}
		blocks := make([]block.Block, len(paths))
		for i, p := range paths {
			mb, err := block.Open(i, p, block.ModeMmap)
			if err != nil {
				t.Fatal(err)
			}
			blocks[i] = mb
		}
		mmap := block.NewStore(blocks...)
		t.Cleanup(func() { mmap.Close() })
		stores["mmap"] = mmap
	}
	return stores
}

func equivCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = 42
	return cfg
}

func sameResult(t *testing.T, label string, a, b core.Result) {
	t.Helper()
	if math.Float64bits(a.Estimate) != math.Float64bits(b.Estimate) {
		t.Fatalf("%s: estimate %v (%#016x) vs %v (%#016x)", label,
			a.Estimate, math.Float64bits(a.Estimate), b.Estimate, math.Float64bits(b.Estimate))
	}
	if math.Float64bits(a.Sum) != math.Float64bits(b.Sum) || a.TotalSamples != b.TotalSamples {
		t.Fatalf("%s: sum/samples diverged: %v/%d vs %v/%d", label, a.Sum, a.TotalSamples, b.Sum, b.TotalSamples)
	}
	if len(a.PerBlock) != len(b.PerBlock) {
		t.Fatalf("%s: per-block count %d vs %d", label, len(a.PerBlock), len(b.PerBlock))
	}
	for i := range a.PerBlock {
		if math.Float64bits(a.PerBlock[i].Answer) != math.Float64bits(b.PerBlock[i].Answer) {
			t.Fatalf("%s: block %d answer %v vs %v", label, i, a.PerBlock[i].Answer, b.PerBlock[i].Answer)
		}
	}
}

// The determinism contract of the batched fast path: for the same seed,
// every estimation mode returns bit-identical results through the batched
// capability and through the scalar fallback, at every worker count, on
// memory and file storage alike.
func TestBatchScalarEquivalenceEstimate(t *testing.T) {
	for name, s := range equivStores(t) {
		scalar := scalarize(s)
		for _, workers := range []int{0, 1, 4} {
			cfg := equivCfg()
			cfg.Workers = workers
			batchRes, err := Estimate(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			scalarRes, err := Estimate(scalar, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, fmt.Sprintf("%s workers=%d", name, workers), batchRes, scalarRes)

			par, err := EstimateParallel(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, fmt.Sprintf("%s workers=%d parallel", name, workers), batchRes, par)
		}
	}
}

func TestBatchScalarEquivalenceRefine(t *testing.T) {
	for name, s := range equivStores(t) {
		for _, workers := range []int{0, 1, 4} {
			cfg := equivCfg()
			cfg.Workers = workers
			batchSess, err := online.NewSession(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			scalarSess, err := online.NewSession(scalarize(s), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 3; round++ {
				bs, err := batchSess.Refine(1)
				if err != nil {
					t.Fatal(err)
				}
				ss, err := scalarSess.Refine(1)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, fmt.Sprintf("%s workers=%d round=%d", name, workers, round), bs.Result, ss.Result)
			}
		}
	}
}

func TestBatchScalarEquivalenceTimeBound(t *testing.T) {
	// FixedSamples pins the calibration burst and the affordable sample
	// size, removing wall-clock feedback: the run becomes a deterministic
	// function of the seed and can be compared bitwise.
	opts := timebound.Options{FixedSamples: 4000}
	for name, s := range equivStores(t) {
		for _, workers := range []int{0, 1, 4} {
			cfg := equivCfg()
			cfg.Workers = workers
			batchRes, err := timebound.Estimate(s, cfg, 10*time.Second, opts)
			if err != nil {
				t.Fatal(err)
			}
			scalarRes, err := timebound.Estimate(scalarize(s), cfg, 10*time.Second, opts)
			if err != nil {
				t.Fatal(err)
			}
			if batchRes.Truncated || scalarRes.Truncated {
				t.Fatalf("%s workers=%d: unexpected truncation", name, workers)
			}
			if math.Float64bits(batchRes.AchievedPrecision) != math.Float64bits(scalarRes.AchievedPrecision) {
				t.Fatalf("%s workers=%d: precision %v vs %v", name, workers,
					batchRes.AchievedPrecision, scalarRes.AchievedPrecision)
			}
			sameResult(t, fmt.Sprintf("%s workers=%d timebound", name, workers), batchRes.Result, scalarRes.Result)
		}
	}
}

// Golden values captured from the pre-batching scalar implementation (the
// commit before the fast path landed), pinning the determinism contract
// across releases: same Config.Seed ⇒ same bits, batched or not.
func TestBatchGoldenValues(t *testing.T) {
	const (
		goldenEstimate = 0x4058ff66ec953e74 // 99.99065699171643
		goldenSamples  = 154120
		goldenNonIID   = 0x40591d0116601b8d // 100.45319136987219
		goldenOnline   = 0x405903109f447787 // 100.04788953481885
	)
	for name, s := range equivStores(t) {
		for _, workers := range []int{0, 1, 4} {
			cfg := equivCfg()
			cfg.Workers = workers
			res, err := Estimate(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if bits := math.Float64bits(res.Estimate); bits != goldenEstimate {
				t.Fatalf("%s workers=%d: estimate %v (%#016x), want golden %#016x",
					name, workers, res.Estimate, bits, uint64(goldenEstimate))
			}
			if res.TotalSamples != goldenSamples {
				t.Fatalf("%s workers=%d: samples %d, want %d", name, workers, res.TotalSamples, goldenSamples)
			}
		}
	}

	mem := equivStores(t)["mem"]
	cfg := equivCfg()
	cfg.PerBlockBounds = true
	res, err := Estimate(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bits := math.Float64bits(res.Estimate); bits != goldenNonIID {
		t.Fatalf("non-iid estimate %v (%#016x), want golden %#016x", res.Estimate, bits, uint64(goldenNonIID))
	}

	sess, err := online.NewSession(mem, equivCfg())
	if err != nil {
		t.Fatal(err)
	}
	var snap online.Snapshot
	for i := 0; i < 3; i++ {
		if snap, err = sess.Refine(1); err != nil {
			t.Fatal(err)
		}
	}
	if bits := math.Float64bits(snap.Result.Estimate); bits != goldenOnline {
		t.Fatalf("online estimate %v (%#016x), want golden %#016x", snap.Result.Estimate, bits, uint64(goldenOnline))
	}
}
