package isla

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestReconfigureDuringQueries is the regression test for the
// SetWorkers/SetBaseConfig data race: both used to write engine state that
// Query reads unsynchronized, so this test fails under -race on the old
// code. The engine now swaps the base config atomically behind a
// copy-on-read accessor.
func TestReconfigureDuringQueries(t *testing.T) {
	db := NewDB()
	db.RegisterSlice("t", normalData(50000, 1), 5)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			db.SetWorkers(i % 4)
			cfg := DefaultConfig()
			cfg.Seed = uint64(i)
			cfg.SampleFraction = 1 - float64(i%3)/10
			db.SetBaseConfig(cfg)
		}
	}()
	for i := 0; i < 25; i++ {
		if _, err := db.Query("SELECT AVG(v) FROM t WITH PRECISION 1 SEED 5"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestStressConcurrentQueries hammers a shared DB with 64 goroutines of
// mixed AVG/SUM/COUNT/EXACT queries while one goroutine keeps
// re-registering a table with identical data. Every answer must be
// bit-identical to a sequential run of the same statement (same seed ⇒
// same answer, with or without cache, mid-registration or not), and after
// the data actually changes, answers must match a fresh engine exactly —
// no cache-coherence violation across Register.
func TestStressConcurrentQueries(t *testing.T) {
	dataA := normalData(100000, 1)
	dataB := normalData(100000, 2)

	var queries []string
	for seed := 1; seed <= 4; seed++ {
		queries = append(queries,
			fmt.Sprintf("SELECT AVG(v) FROM a WITH PRECISION 0.5 SEED %d", seed),
			fmt.Sprintf("SELECT SUM(v) FROM a WITH PRECISION 0.5 SEED %d", seed),
			fmt.Sprintf("SELECT AVG(v) FROM b WITH PRECISION 0.8 SEED %d", seed),
		)
	}
	queries = append(queries,
		"SELECT COUNT(*) FROM a",
		"SELECT AVG(v) FROM b METHOD EXACT",
	)

	for _, cached := range []bool{false, true} {
		name := "cold-pilots"
		if cached {
			name = "plan-cache"
		}
		t.Run(name, func(t *testing.T) {
			newDB := func() *DB {
				db := NewDB()
				db.RegisterSlice("a", dataA, 8)
				db.RegisterSlice("b", dataB, 8)
				if cached {
					db.EnablePlanCache(64)
				}
				return db
			}

			// Golden answers from a sequential run on an identical DB.
			seq := newDB()
			want := make(map[string]float64, len(queries))
			for _, q := range queries {
				r, err := seq.Query(q)
				if err != nil {
					t.Fatalf("sequential %q: %v", q, err)
				}
				want[q] = r.Value
			}

			db := newDB()
			db.SetWorkers(2) // concurrency inside each query too

			stop := make(chan struct{})
			var reg sync.WaitGroup
			reg.Add(1)
			go func() {
				defer reg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					// Same data: the generation bumps but every answer
					// stays bit-identical.
					db.RegisterSlice("a", dataA, 8)
					time.Sleep(time.Millisecond)
				}
			}()

			var wg sync.WaitGroup
			for g := 0; g < 64; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < len(queries); i++ {
						q := queries[(g+i)%len(queries)]
						r, err := db.Query(q)
						if err != nil {
							t.Errorf("goroutine %d %q: %v", g, q, err)
							return
						}
						if r.Value != want[q] {
							t.Errorf("goroutine %d %q: got %v, sequential run got %v",
								g, q, r.Value, want[q])
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(stop)
			reg.Wait()

			// Now actually change the data: answers must match a fresh
			// engine over the new store, bit for bit.
			dataC := normalData(100000, 3)
			db.RegisterSlice("a", dataC, 8)
			freshDB := NewDB()
			freshDB.RegisterSlice("a", dataC, 8)
			if cached {
				freshDB.EnablePlanCache(64)
			}
			const probe = "SELECT AVG(v) FROM a WITH PRECISION 0.5 SEED 1"
			got, err := db.Query(probe)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := freshDB.Query(probe)
			if err != nil {
				t.Fatal(err)
			}
			if got.Value != fresh.Value || got.Samples != fresh.Samples {
				t.Fatalf("after re-register: %v/%d, fresh engine %v/%d",
					got.Value, got.Samples, fresh.Value, fresh.Samples)
			}
			if got.Value == want[probe] {
				t.Fatal("answer did not change with the data — stale store served")
			}
		})
	}
}
