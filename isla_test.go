package isla

import (
	"math"
	"path/filepath"
	"testing"

	"isla/internal/stats"
)

func normalData(n int, seed uint64) []float64 {
	r := stats.NewRNG(seed)
	d := stats.Normal{Mu: 100, Sigma: 20}
	data := make([]float64, n)
	for i := range data {
		data[i] = d.Sample(r)
	}
	return data
}

func TestDBQuickstartFlow(t *testing.T) {
	db := NewDB()
	db.RegisterSlice("sales", normalData(300000, 1), 10)
	if got := db.Tables(); len(got) != 1 || got[0] != "sales" {
		t.Fatalf("tables = %v", got)
	}
	res, err := db.Query("SELECT AVG(v) FROM sales WITH PRECISION 0.5 SEED 2")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-100) > 1.0 {
		t.Fatalf("avg = %v", res.Value)
	}
	if res.CI == nil {
		t.Fatal("missing CI")
	}
	cnt, err := db.Query("SELECT COUNT(*) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Value != 300000 {
		t.Fatalf("count = %v", cnt.Value)
	}
}

func TestDBSetBaseConfig(t *testing.T) {
	db := NewDB()
	db.RegisterSlice("t", normalData(100000, 3), 5)
	cfg := DefaultConfig()
	cfg.Seed = 9
	cfg.SampleFraction = 0.5
	db.SetBaseConfig(cfg)
	// The statement still must carry PRECISION (dialect rule), but the
	// base config's other knobs (seed, sample fraction) apply.
	res, err := db.Query("SELECT AVG(v) FROM t WITH PRECISION 1")
	if err != nil {
		t.Fatal(err)
	}
	full := DefaultConfig()
	full.Seed = 9
	db.SetBaseConfig(full)
	res2, err := db.Query("SELECT AVG(v) FROM t WITH PRECISION 1")
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.Samples) / float64(res2.Samples)
	if math.Abs(ratio-0.5) > 0.05 {
		t.Fatalf("base-config sample fraction not honored: ratio %v", ratio)
	}
}

func TestEstimateFacade(t *testing.T) {
	s := Partition(normalData(300000, 4), 10)
	cfg := DefaultConfig()
	cfg.Precision = 0.5
	res, err := Estimate(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-100) > 1.0 {
		t.Fatalf("estimate = %v", res.Estimate)
	}
	par, err := EstimateParallel(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if par.Estimate != res.Estimate {
		t.Fatalf("parallel %v != sequential %v", par.Estimate, res.Estimate)
	}
}

func TestSessionFacade(t *testing.T) {
	s := Partition(normalData(200000, 5), 8)
	cfg := DefaultConfig()
	cfg.Precision = 1.0
	sess, err := NewSession(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sess.Refine(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(snap.Result.Estimate-100) > 2 {
		t.Fatalf("online estimate = %v", snap.Result.Estimate)
	}
}

func TestExtremeFacade(t *testing.T) {
	s := Partition(normalData(100000, 6), 5)
	truth, err := ExactExtreme(s, MAX)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EstimateExtreme(s, MAX, ExtremeConfig{SampleRate: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value > truth || truth-res.Value > 10 {
		t.Fatalf("extreme %v vs truth %v", res.Value, truth)
	}
}

func TestFileRoundTripFacade(t *testing.T) {
	dir := t.TempDir()
	data := normalData(50000, 8)
	s, err := WriteFiles(filepath.Join(dir, "col"), data, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalLen() != 50000 {
		t.Fatalf("file store len = %d", s.TotalLen())
	}
	cfg := DefaultConfig()
	cfg.Precision = 1.0
	res, err := Estimate(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-100) > 2 {
		t.Fatalf("file-backed estimate = %v", res.Estimate)
	}
}

func TestOpenFilesFacade(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteFiles(filepath.Join(dir, "col"), normalData(10000, 9), 2); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFiles(filepath.Join(dir, "col.000"), filepath.Join(dir, "col.001"))
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalLen() != 10000 {
		t.Fatalf("len = %d", s.TotalLen())
	}
	if _, err := OpenFiles(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParseQueryFacade(t *testing.T) {
	q, err := ParseQuery("SELECT AVG(x) FROM t WITH PRECISION 0.1")
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "t" {
		t.Fatalf("q = %+v", q)
	}
}
