// Command islaworker serves data blocks to an ISLA coordinator over
// net/rpc — one "subsidiary" of the paper's §VII-E deployment. Blocks come
// from binary block files or a built-in generator (for demos).
//
//	islaworker -listen 127.0.0.1:7070 -load /data/sales        # sales.000…
//	islaworker -listen 127.0.0.1:7071 -gen normal:n=1000000
//
// Then, from any machine that can reach the workers:
//
//	islacli -cluster 127.0.0.1:7070,127.0.0.1:7071 \
//	        -q "SELECT AVG(v) FROM cluster WITH PRECISION 0.1"
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"isla"
	"isla/internal/block"
	"isla/internal/workload"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "address to serve on")
		load     = flag.String("load", "", "block file prefix (expects prefix.000…)")
		gen      = flag.String("gen", "", "synthetic spec dist:key=val,... (demo mode)")
		baseID   = flag.Int("base-id", 0, "first block id served by this worker")
		openMode = flag.String("open", "auto", "block-file access for -load: mmap, pread or auto")
		manifest = flag.String("manifest", "", "shard manifest to validate the served blocks against before listening")
		shAddr   = flag.String("shard-addr", "", "this worker's address in -manifest (defaults to -listen)")
	)
	flag.Parse()

	mode, err := block.ParseOpenMode(*openMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "islaworker: %v\n", err)
		os.Exit(2)
	}

	var blocks []isla.Block
	switch {
	case *load != "":
		matches, err := filepath.Glob(*load + ".*")
		if err != nil || len(matches) == 0 {
			fmt.Fprintf(os.Stderr, "islaworker: no block files match %s.* (%v)\n", *load, err)
			os.Exit(1)
		}
		sort.Strings(matches)
		for i, p := range matches {
			fb, err := block.Open(*baseID+i, p, mode)
			if err != nil {
				fmt.Fprintf(os.Stderr, "islaworker: %v\n", err)
				os.Exit(1)
			}
			blocks = append(blocks, fb)
		}
	case *gen != "":
		s, err := genStore(*gen, *baseID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "islaworker: %v\n", err)
			os.Exit(1)
		}
		blocks = s
	default:
		fmt.Fprintln(os.Stderr, "islaworker: need -load or -gen")
		os.Exit(2)
	}

	if *manifest != "" {
		addr := *shAddr
		if addr == "" {
			addr = *listen
		}
		if err := validateManifest(*manifest, addr, blocks); err != nil {
			fmt.Fprintf(os.Stderr, "islaworker: %v\n", err)
			os.Exit(1)
		}
	}

	w := isla.NewWorker(blocks...)
	l, err := w.ListenAndServe(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "islaworker: %v\n", err)
		os.Exit(1)
	}
	var total int64
	for _, b := range blocks {
		total += b.Len()
	}
	fmt.Printf("islaworker: serving %d blocks (%d rows) on %s\n", len(blocks), total, l.Addr())

	// Serve until interrupted or the accept loop dies, then close the
	// listener and every open connection so in-flight coordinator calls
	// fail fast instead of hanging.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	exit := 0
	select {
	case <-ctx.Done():
		fmt.Println("islaworker: shutting down")
	case err := <-w.ServeError():
		fmt.Fprintf(os.Stderr, "islaworker: accept failed: %v\n", err)
		exit = 1
	}
	w.Close()
	for _, b := range blocks {
		if c, ok := b.(io.Closer); ok {
			c.Close() // release block file handles
		}
	}
	os.Exit(exit)
}

// validateManifest checks the loaded blocks against this worker's entry in
// the shard manifest: every assigned block must be present at the recorded
// length. Failing fast here beats being rejected by the coordinator later.
func validateManifest(path, addr string, blocks []isla.Block) error {
	man, err := isla.LoadShardManifest(path)
	if err != nil {
		return err
	}
	var entry *isla.ShardEntry
	for i := range man.Shards {
		if man.Shards[i].Addr == addr {
			entry = &man.Shards[i]
			break
		}
	}
	if entry == nil {
		return fmt.Errorf("address %q not in shard manifest %s", addr, path)
	}
	have := make(map[int]int64, len(blocks))
	for _, b := range blocks {
		have[b.ID()] = b.Len()
	}
	for i, id := range entry.Blocks {
		l, ok := have[id]
		if !ok {
			return fmt.Errorf("manifest assigns block %d to %s, but it is not loaded", id, addr)
		}
		if l != entry.Lens[i] {
			return fmt.Errorf("block %d has %d rows, manifest records %d", id, l, entry.Lens[i])
		}
	}
	return nil
}

// genStore parses "dist:key=val,..." into re-identified blocks.
func genStore(spec string, baseID int) ([]isla.Block, error) {
	dist, params, _ := strings.Cut(spec, ":")
	kv := map[string]float64{"mu": 100, "sigma": 20, "gamma": 0.1, "lo": 1, "hi": 199,
		"n": 1_000_000, "blocks": 4, "seed": 1}
	if params != "" {
		for _, p := range strings.Split(params, ",") {
			k, v, ok := strings.Cut(p, "=")
			if !ok {
				return nil, fmt.Errorf("bad param %q", p)
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q", v)
			}
			kv[strings.TrimSpace(k)] = f
		}
	}
	n, b, seed := int(kv["n"]), int(kv["blocks"]), uint64(kv["seed"])
	var (
		s   *block.Store
		err error
	)
	switch strings.ToLower(dist) {
	case "normal", "":
		s, _, err = workload.Normal(kv["mu"], kv["sigma"], n, b, seed)
	case "exp", "exponential":
		s, _, err = workload.Exponential(kv["gamma"], n, b, seed)
	case "uniform":
		s, _, err = workload.UniformRange(kv["lo"], kv["hi"], n, b, seed)
	case "tpch":
		s, _, err = workload.TPCHLineitem(n, b, seed)
	default:
		return nil, fmt.Errorf("unknown distribution %q", dist)
	}
	if err != nil {
		return nil, err
	}
	// Re-identify so several workers can serve disjoint id ranges.
	out := make([]isla.Block, 0, s.NumBlocks())
	for i, blk := range s.Blocks() {
		mb := blk.(*block.MemBlock)
		out = append(out, block.NewMemBlock(baseID+i, mb.Data()))
	}
	return out, nil
}
