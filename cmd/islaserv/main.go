// Command islaserv serves ISLA approximate aggregation over HTTP/JSON.
//
// Tables come from the same sources as islacli — synthetic generators,
// text or CSV files, or binary block files (-load name=prefix, serviced
// zero-copy via mmap by default; -open pread forces positioned reads) —
// and queries arrive as POST /query bodies:
//
//	islaserv -gen "sales=normal:mu=100,sigma=20,n=1000000,blocks=10" -addr :8080
//	curl -s localhost:8080/query -d '{"sql":"SELECT AVG(v) FROM sales WITH PRECISION 0.1"}'
//
// Grouped tables come from -gengroup specs or -loadgroup manifests
// (written by WriteGroupFiles / group.WriteFiles); GROUP BY and WHERE
// statements then answer per group with per-group errors in the JSON body.
//
// Endpoints: POST /query, GET /tables, GET /healthz, GET /stats. The
// pilot-plan cache is on by default (-cache 0 or less disables it), so repeat
// queries on a table skip the pre-estimation pilot; an admission-control
// semaphore (-inflight) bounds concurrently executing queries and rejects
// the excess with 503. SIGINT/SIGTERM drain in-flight requests before
// exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"isla/internal/block"
	"isla/internal/cluster"
	"isla/internal/core"
	"isla/internal/engine"
	"isla/internal/group"
	"isla/internal/ingest"
	"isla/internal/serve"
	"isla/internal/workload"
	"isla/internal/workload/groupspec"
)

func main() {
	var gens, texts, csvs, loads, groupGens, groupLoads, shardLoads multiFlag
	flag.Var(&gens, "gen", "synthetic table spec name=dist:key=val,... (repeatable)")
	flag.Var(&texts, "txt", "load one-value-per-line text name=path (repeatable)")
	flag.Var(&csvs, "csv", "load CSV column name=path:column (repeatable)")
	flag.Var(&loads, "load", "serve binary block files name=prefix (expects prefix.000…; repeatable)")
	flag.Var(&groupGens, "gengroup", "synthetic grouped table spec name=column;key:dist:params;... (repeatable)")
	flag.Var(&groupLoads, "loadgroup", "serve a grouped table from its manifest name=manifest.json (repeatable)")
	flag.Var(&shardLoads, "shards", "serve a sharded table from its shard manifest name=shards.json; blocks stay on the islaworkers (repeatable)")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		blocks   = flag.Int("blocks", 10, "block count for -txt/-csv tables")
		workers  = flag.Int("workers", -1, "exec-runtime concurrency per query: 0 sequential, -1 one worker per CPU, n as-is")
		openMode = flag.String("open", "auto", "block-file access for -load: mmap (zero-copy mapping), pread (positioned reads) or auto")
		sumPilot = flag.Bool("summary-pilot", false, "serve pre-estimation from persisted ISLB v2 summaries when every block has one")
		cache    = flag.Int("cache", 128, "pilot-plan cache capacity; <= 0 disables the cache")
		timeout  = flag.Duration("timeout", 30*time.Second, "default per-query execution timeout (requests may override via timeout_ms)")
		maxTime  = flag.Duration("max-timeout", 5*time.Minute, "upper bound on any per-query timeout")
		inflight = flag.Int("inflight", 64, "admission control: max concurrently executing queries; excess requests get 503 (-1 disables)")
		grace    = flag.Duration("grace", 10*time.Second, "shutdown grace period for draining in-flight requests")
		scrubOn  = flag.Bool("scrub-on-load", false, "verify every table's payload checksums before serving; corrupt blocks are quarantined and the server starts degraded")
		partial  = flag.Bool("allow-partial", false, "answer over the intact blocks when corruption was quarantined, reporting coverage in the response, instead of refusing with 503")
	)
	flag.Parse()

	mode, err := block.ParseOpenMode(*openMode)
	if err != nil {
		fatal(err)
	}

	catalog := engine.NewCatalog()
	stores, err := loadTables(catalog, gens, texts, csvs, loads, groupGens, groupLoads, shardLoads, *blocks, mode)
	if err != nil {
		fatal(err)
	}
	defer func() {
		for _, s := range stores {
			s.Close() // release block mappings/handles on shutdown
		}
	}()
	if len(catalog.Names()) == 0 {
		fmt.Fprintln(os.Stderr, "islaserv: no tables; use -gen, -txt, -csv or -load, e.g.\n"+
			`  islaserv -gen "sales=normal:mu=100,sigma=20,n=1000000,blocks=10"`)
		os.Exit(2)
	}

	eng := engine.New(catalog)
	eng.SetWorkers(*workers)
	if *sumPilot {
		cfg := eng.BaseConfig()
		cfg.SummaryPilot = true
		eng.SetBaseConfig(cfg)
	}
	if *cache > 0 {
		eng.EnablePlanCache(*cache)
	}
	eng.SetAllowPartial(*partial)
	if *scrubOn {
		reports, err := eng.Scrub(context.Background(), *workers)
		if err != nil {
			fatal(err)
		}
		for _, tr := range reports {
			log.Printf("islaserv: scrub %s: %s", tr.Table, tr.Report.String())
		}
	}

	srv, err := serve.New(serve.Config{
		Engine:         eng,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTime,
		MaxInFlight:    *inflight,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("islaserv: serving %s on %s (cache=%d, inflight=%d)",
		strings.Join(catalog.Names(), ", "), *addr, *cache, *inflight)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	log.Printf("islaserv: shutting down, draining for up to %v", *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("islaserv: shutdown: %v", err)
	}
}

// loadTables registers every table spec into the catalog and returns the
// file-backed stores (plain and grouped) so the caller can release their
// mappings/handles on shutdown.
func loadTables(catalog *engine.Catalog, gens, texts, csvs, loads, groupGens, groupLoads, shardLoads []string, blocks int, mode block.OpenMode) ([]io.Closer, error) {
	for _, g := range gens {
		if err := registerGen(catalog, g); err != nil {
			return nil, err
		}
	}
	for _, gg := range groupGens {
		name, g, err := groupspec.FromSpec(gg)
		if err != nil {
			return nil, err
		}
		catalog.RegisterGrouped(name, g)
	}
	for _, tl := range texts {
		name, path, ok := strings.Cut(tl, "=")
		if !ok {
			return nil, fmt.Errorf("islaserv: bad -txt %q (want name=path)", tl)
		}
		s, _, err := ingest.LoadText(path, ingest.Options{Blocks: blocks, SkipInvalid: true})
		if err != nil {
			return nil, err
		}
		catalog.Register(name, s)
	}
	for _, cl := range csvs {
		name, rest, ok := strings.Cut(cl, "=")
		if !ok {
			return nil, fmt.Errorf("islaserv: bad -csv %q (want name=path:column)", cl)
		}
		path, column, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("islaserv: bad -csv %q (want name=path:column)", cl)
		}
		s, _, err := ingest.LoadCSV(path, column, 0, ingest.Options{Blocks: blocks, SkipInvalid: true})
		if err != nil {
			return nil, err
		}
		catalog.Register(name, s)
	}
	var stores []io.Closer
	for _, gl := range groupLoads {
		name, path, ok := strings.Cut(gl, "=")
		if !ok {
			return stores, fmt.Errorf("islaserv: bad -loadgroup %q (want name=manifest.json)", gl)
		}
		g, err := group.OpenManifest(path, mode)
		if err != nil {
			return stores, err
		}
		stores = append(stores, g)
		catalog.RegisterGrouped(name, g)
	}
	for _, sl := range shardLoads {
		name, path, ok := strings.Cut(sl, "=")
		if !ok {
			return stores, fmt.Errorf("islaserv: bad -shards %q (want name=shards.json)", sl)
		}
		man, err := cluster.LoadShardManifest(path)
		if err != nil {
			return stores, err
		}
		st, err := cluster.NewShardTable(man, core.DefaultConfig(), cluster.Config{}, nil)
		if err != nil {
			return stores, err
		}
		stores = append(stores, st)
		catalog.RegisterSharded(name, st)
	}
	for _, ld := range loads {
		name, prefix, ok := strings.Cut(ld, "=")
		if !ok {
			return stores, fmt.Errorf("islaserv: bad -load %q (want name=prefix)", ld)
		}
		matches, err := filepath.Glob(prefix + ".*")
		if err != nil {
			return stores, err
		}
		if len(matches) == 0 {
			return stores, fmt.Errorf("islaserv: no block files match %s.*", prefix)
		}
		sort.Strings(matches)
		blks := make([]block.Block, 0, len(matches))
		for i, p := range matches {
			fb, err := block.Open(i, p, mode)
			if err != nil {
				block.NewStore(blks...).Close()
				return stores, err
			}
			blks = append(blks, fb)
		}
		s := block.NewStore(blks...)
		stores = append(stores, s)
		catalog.Register(name, s)
	}
	return stores, nil
}

// registerGen materializes a "name=dist:key=val,..." spec (the syntax
// shared with islacli -gen) and registers the table.
func registerGen(catalog *engine.Catalog, spec string) error {
	name, store, err := workload.FromSpec(spec)
	if err != nil {
		return err
	}
	catalog.Register(name, store)
	return nil
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintf(os.Stderr, "islaserv: %v\n", err)
	os.Exit(1)
}

// multiFlag collects repeatable string flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ";") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }
