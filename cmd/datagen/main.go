// Command datagen materializes synthetic workloads as ISLA binary block
// files, simulating the paper's "data pre-processed and saved in b
// documents" setup.
//
//	datagen -dist normal -mu 100 -sigma 20 -n 10000000 -blocks 10 -out /tmp/sales
//
// writes /tmp/sales.000 … /tmp/sales.009, loadable by islacli -load or
// isla.OpenFiles.
package main

import (
	"flag"
	"fmt"
	"os"

	"isla/internal/block"
	"isla/internal/stats"
	"isla/internal/workload"
)

func main() {
	var (
		dist   = flag.String("dist", "normal", "normal|exponential|uniform|salary|tlc|tpch")
		mu     = flag.Float64("mu", 100, "normal mean")
		sigma  = flag.Float64("sigma", 20, "normal standard deviation")
		gamma  = flag.Float64("gamma", 0.1, "exponential rate")
		lo     = flag.Float64("lo", 1, "uniform lower bound")
		hi     = flag.Float64("hi", 199, "uniform upper bound")
		n      = flag.Int("n", 1_000_000, "number of values")
		blocks = flag.Int("blocks", 10, "number of block files")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("out", "", "output prefix (required)")
		format = flag.String("format", "v3", "ISLB format: v3 (summary footers + payload checksums, default), v2 (summary footers) or v1 (legacy, for compat fixtures)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}
	if *blocks <= 0 {
		fmt.Fprintf(os.Stderr, "datagen: block count %d must be positive\n", *blocks)
		os.Exit(2)
	}

	var (
		store *block.Store
		truth float64
		err   error
	)
	switch *dist {
	case "normal":
		store, truth, err = workload.Normal(*mu, *sigma, *n, 1, *seed)
	case "exponential", "exp":
		store, truth, err = workload.Exponential(*gamma, *n, 1, *seed)
	case "uniform":
		store, truth, err = workload.UniformRange(*lo, *hi, *n, 1, *seed)
	case "salary":
		store, truth, err = workload.Salary(*n, 1, *seed)
	case "tlc":
		store, truth, err = workload.TLCTrips(*n, 1, *seed)
	case "tpch":
		store, truth, err = workload.TPCHLineitem(*n, 1, *seed)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown distribution %q\n", *dist)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}

	// Re-partition the single in-memory block into files.
	data := make([]float64, 0, store.TotalLen())
	if err := store.Scan(func(v float64) error { data = append(data, v); return nil }); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	switch *format {
	case "v3":
		fileStore, err := block.WritePartitioned(*out, data, *blocks)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		fileStore.Close() // datagen only writes; release the mappings immediately
	case "v2", "v1":
		write := block.WriteFileV2
		if *format == "v1" {
			write = block.WriteFileV1
		}
		for i := 0; i < *blocks; i++ {
			lo := i * len(data) / *blocks
			hi := (i + 1) * len(data) / *blocks
			path := fmt.Sprintf("%s.%03d", *out, i)
			if err := write(path, data[lo:hi]); err != nil {
				fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
				os.Exit(1)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown format %q (want v1, v2 or v3)\n", *format)
		os.Exit(2)
	}
	var m stats.Moments
	m.AddAll(data)
	fmt.Printf("wrote %d values (%d blocks, ISLB %s) to %s.*\n", len(data), *blocks, *format, *out)
	fmt.Printf("distribution mean %.4f, empirical mean %.4f, stddev %.4f\n", truth, m.Mean(), m.StdDev())
}
