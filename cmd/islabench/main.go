// Command islabench regenerates the paper's tables and figures.
//
// Usage:
//
//	islabench -exp table3            # one experiment
//	islabench -exp table3,fig6a     # several
//	islabench -exp all              # everything
//	islabench -list                 # show available experiment ids
//
// Flags -n, -blocks, -seed and -runs scale the workloads; defaults fit a
// laptop (the paper's 10¹⁰-row runs scale down without changing the
// accuracy story — see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"isla/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id(s), comma separated, or 'all'")
		n       = flag.Int("n", 1_000_000, "dataset size")
		blocks  = flag.Int("blocks", 10, "number of blocks")
		seed    = flag.Uint64("seed", 1, "random seed")
		runs    = flag.Int("runs", 5, "repetitions for timing experiments")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		jsonOut = flag.String("json", "", "run the five execution modes and write per-mode wall time + samples as JSON to the given path ('-' for stdout), then exit")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := bench.Options{N: *n, Blocks: *blocks, Seed: *seed, Runs: *runs}

	if *jsonOut != "" {
		rep, err := bench.Modes(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "islabench: modes: %v\n", err)
			os.Exit(1)
		}
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "islabench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := rep.WriteJSON(out); err != nil {
			fmt.Fprintf(os.Stderr, "islabench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	ids := bench.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	failed := false
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fn, ok := bench.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "islabench: unknown experiment %q (use -list)\n", id)
			failed = true
			continue
		}
		tab, err := fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "islabench: %s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(tab.String())
	}
	if failed {
		os.Exit(1)
	}
}
