// Command islaload drives open-loop load at an islaserv instance and
// reports what the server delivered: achieved QPS, client-observed
// latency quantiles (p50/p95/p99), and the rejected/timed-out/truncated
// counts that show which safety valve opened under pressure.
//
// Point it at a running server:
//
//	islaload -url http://127.0.0.1:8080 -table sales -qps 200 -duration 10s \
//	  -mix point=0.4,filtered=0.3,grouped=0.2,budget=0.1 \
//	  -group-table orders -group-col region -json BENCH_serving.json
//
// or let it serve itself for a self-contained smoke run (-selfserve spins
// up an in-process server over synthetic tables on a loopback port):
//
//	islaload -selfserve -qps 50 -duration 3s -json BENCH_serving.json
//
// The -mix weights are relative shares of the four traffic classes:
// point (AVG WITH PRECISION), filtered (adds WHERE v > filter), grouped
// (GROUP BY on the grouped table) and budget (precision-less statements
// carrying budget_ms — the latency-budget mode). The generator is
// open-loop: arrivals follow the clock, not completions, so a slowing
// server faces mounting concurrency as it would in production.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"isla/internal/engine"
	"isla/internal/load"
	"isla/internal/serve"
	"isla/internal/workload"
	"isla/internal/workload/groupspec"
)

func main() {
	var (
		url        = flag.String("url", "", "target server base URL (omit with -selfserve)")
		selfserve  = flag.Bool("selfserve", false, "serve synthetic tables in-process on a loopback port and load that")
		rows       = flag.Int("rows", 200000, "rows per synthetic table in -selfserve mode")
		blocks     = flag.Int("blocks", 8, "blocks per synthetic table in -selfserve mode")
		table      = flag.String("table", "sales", "table for point/filtered/budget traffic")
		groupTable = flag.String("group-table", "orders", "grouped table for GROUP BY traffic")
		groupCol   = flag.String("group-col", "region", "group column of -group-table")
		duration   = flag.Duration("duration", 10*time.Second, "run length")
		qps        = flag.Float64("qps", 100, "target open-loop arrival rate")
		mix        = flag.String("mix", "point=0.4,filtered=0.3,grouped=0.2,budget=0.1", "relative traffic-class weights")
		precision  = flag.Float64("precision", 0.5, "WITH PRECISION target")
		budgetMS   = flag.Int64("budget-ms", 50, "budget_ms of the budget class")
		timeoutMS  = flag.Int64("timeout-ms", 0, "timeout_ms sent on every request (0: server default)")
		filter     = flag.Float64("filter", 95, "WHERE v > filter threshold of the filtered class")
		seed       = flag.Uint64("seed", 1, "request-stream seed (same seed, same statement stream)")
		seeds      = flag.Int("seeds", 8, "distinct SEED clauses the stream cycles through")
		outstand   = flag.Int("outstanding", 256, "max in-flight requests; further arrivals count as dropped")
		jsonPath   = flag.String("json", "", "write the full report as JSON to this file")
	)
	flag.Parse()

	m, err := parseMix(*mix)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := *url
	if *selfserve {
		if base != "" {
			fatal(fmt.Errorf("-url and -selfserve are mutually exclusive"))
		}
		shutdown, addr, err := startSelfServe(*table, *groupTable, *groupCol, *rows, *blocks)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		base = "http://" + addr
		fmt.Fprintf(os.Stderr, "islaload: self-serving on %s\n", base)
	}
	if base == "" {
		fatal(fmt.Errorf("missing -url (or use -selfserve)"))
	}

	rep, err := load.Run(ctx, load.Config{
		BaseURL:        base,
		Table:          *table,
		GroupTable:     *groupTable,
		GroupBy:        *groupCol,
		Duration:       *duration,
		QPS:            *qps,
		Mix:            m,
		Precision:      *precision,
		BudgetMS:       *budgetMS,
		TimeoutMS:      *timeoutMS,
		FilterValue:    *filter,
		Seed:           *seed,
		Seeds:          *seeds,
		MaxOutstanding: *outstand,
	})
	if err != nil {
		fatal(err)
	}

	printReport(rep)
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(struct {
			GeneratedAt string      `json:"generated_at"`
			Report      load.Report `json:"report"`
		}{time.Now().UTC().Format(time.RFC3339), rep}, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "islaload: report written to %s\n", *jsonPath)
	}
	if rep.OK == 0 {
		fatal(fmt.Errorf("no request succeeded (%d sent)", rep.Sent))
	}
}

// parseMix parses "point=0.4,filtered=0.3,grouped=0.2,budget=0.1"; absent
// classes weigh zero.
func parseMix(s string) (load.Mix, error) {
	var m load.Mix
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("bad -mix entry %q (want class=weight)", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad -mix weight %q", part)
		}
		switch name {
		case "point":
			m.Point = w
		case "filtered":
			m.Filtered = w
		case "grouped":
			m.Grouped = w
		case "budget":
			m.Budget = w
		default:
			return m, fmt.Errorf("unknown -mix class %q (want point, filtered, grouped or budget)", name)
		}
	}
	return m, nil
}

// startSelfServe builds an engine over synthetic tables (a normal table
// and a two-group grouped table), serves it on a loopback port, and
// returns the shutdown func and listen address.
func startSelfServe(table, groupTable, groupCol string, rows, blocks int) (func(), string, error) {
	catalog := engine.NewCatalog()
	sales, _, err := workload.Normal(100, 20, rows, blocks, 42)
	if err != nil {
		return nil, "", err
	}
	catalog.Register(table, sales)

	gRows, gBlocks := rows/4, max(blocks/2, 1)
	spec := fmt.Sprintf("%s=%s;na:normal:mu=90,sigma=10,n=%d,blocks=%d;eu:normal:mu=110,sigma=10,n=%d,blocks=%d",
		groupTable, groupCol, gRows, gBlocks, gRows, gBlocks)
	name, g, err := groupspec.FromSpec(spec)
	if err != nil {
		return nil, "", err
	}
	catalog.RegisterGrouped(name, g)

	eng := engine.New(catalog)
	eng.SetWorkers(-1)
	eng.EnablePlanCache(128)
	srv, err := serve.New(serve.Config{Engine: eng})
	if err != nil {
		return nil, "", err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go httpSrv.Serve(ln) //nolint:errcheck // reported via requests failing
	shutdown := func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx) //nolint:errcheck // best-effort drain on exit
	}
	return shutdown, ln.Addr().String(), nil
}

func printReport(rep load.Report) {
	fmt.Printf("islaload: %d sent over %.1fs — %.1f QPS achieved (target %.1f)\n",
		rep.Sent, rep.DurationSeconds, rep.AchievedQPS, rep.Config.QPS)
	fmt.Printf("  ok %d  rejected %d  timed_out %d  errored %d  truncated %d  dropped %d\n",
		rep.OK, rep.Rejected, rep.TimedOut, rep.Errored, rep.Truncated, rep.Dropped)
	fmt.Printf("  latency p50 %.2fms  p95 %.2fms  p99 %.2fms\n", rep.P50MS, rep.P95MS, rep.P99MS)
	for _, class := range []string{"point", "filtered", "grouped", "budget"} {
		cr := rep.PerClass[class]
		if cr == nil {
			continue
		}
		fmt.Printf("  %-8s sent %-5d ok %-5d p50 %.2fms  p99 %.2fms", class, cr.Sent, cr.OK, cr.P50MS, cr.P99MS)
		if cr.Truncated > 0 {
			fmt.Printf("  truncated %d", cr.Truncated)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "islaload: %v\n", err)
	os.Exit(1)
}
