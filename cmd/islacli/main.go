// Command islacli is an interactive shell for ISLA approximate aggregation.
//
// Tables come from binary block files (-load name=prefix, expecting files
// prefix.000, prefix.001, …) or from built-in synthetic generators
// (-gen "name=normal:mu=100,sigma=20,n=1000000,blocks=10"). Grouped
// tables come from -gengroup "name=column;key:dist:params;..." or
// -loadgroup name=manifest.json, and answer GROUP BY / WHERE statements
// per group. Queries are read from -q or line by line from stdin:
//
//	islacli -gen "sales=normal:mu=100,sigma=20,n=1000000,blocks=10" \
//	        -q "SELECT AVG(v) FROM sales WITH PRECISION 0.1"
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"isla"
	"isla/internal/workload"
	"isla/internal/workload/groupspec"
)

func main() {
	var gens, loads, texts, csvs, groupGens, groupLoads, shardLoads multiFlag
	flag.Var(&gens, "gen", "synthetic table spec name=dist:key=val,... (repeatable)")
	flag.Var(&loads, "load", "load block files name=prefix (repeatable)")
	flag.Var(&texts, "txt", "load one-value-per-line text name=path (repeatable)")
	flag.Var(&csvs, "csv", "load CSV column name=path:column (repeatable)")
	flag.Var(&groupGens, "gengroup", "synthetic grouped table spec name=column;key:dist:params;... (repeatable)")
	flag.Var(&groupLoads, "loadgroup", "load a grouped table from its manifest name=manifest.json (repeatable)")
	flag.Var(&shardLoads, "shards", "serve a sharded table from its shard manifest name=shards.json; blocks stay on the islaworkers (repeatable)")
	clusterAddrs := flag.String("cluster", "", "comma-separated islaworker addresses; runs the query on the cluster as table 'cluster'")
	callTimeout := flag.Duration("call-timeout", 0, "per-RPC deadline for -cluster calls (0 = default, negative disables)")
	rpcRetries := flag.Int("rpc-retries", 0, "retries per -cluster call on transient failure before failing over (0 = default, negative disables)")
	rpcBackoff := flag.Duration("rpc-backoff", 0, "base retry backoff for -cluster calls, doubled per attempt with jitter (0 = default, negative disables)")
	allowPartial := flag.Bool("allow-partial", false, "answer over the intact data instead of failing: with -cluster when some blocks have no live replica, locally when -scrub quarantined corrupt blocks")
	q := flag.String("q", "", "execute one query and exit")
	workers := flag.Int("workers", 0, "exec-runtime concurrency: 0 sequential, -1 one worker per CPU, n as-is; with -cluster, n caps in-flight RPCs (0/-1 = one per block). Answers are identical for any setting")
	openMode := flag.String("open", "auto", "block-file access for -load: mmap (zero-copy mapping), pread (positioned reads) or auto (mmap where supported)")
	summaryPilot := flag.Bool("summary-pilot", false, "serve pre-estimation from persisted ISLB v2 summaries when every block has one: exact σ/sketch0, zero pilot samples")
	verify := flag.Bool("verify", false, "verify every table's payload checksums against the on-disk bytes, print a report and exit; non-zero status when corruption is found")
	scrub := flag.Bool("scrub", false, "verify payload checksums at startup and quarantine whatever fails before answering queries (combine with -allow-partial to degrade instead of refuse)")
	flag.Parse()

	mode, err := isla.ParseOpenMode(*openMode)
	if err != nil {
		fatal(err)
	}

	if *clusterAddrs != "" {
		fault := isla.ClusterConfig{
			CallTimeout:  *callTimeout,
			MaxRetries:   *rpcRetries,
			BaseBackoff:  *rpcBackoff,
			AllowPartial: *allowPartial,
		}
		if err := runCluster(*clusterAddrs, *q, *workers, fault); err != nil {
			fatal(err)
		}
		return
	}

	db := isla.NewDB()
	db.SetWorkers(*workers)
	if *summaryPilot {
		cfg := db.BaseConfig()
		cfg.SummaryPilot = true
		db.SetBaseConfig(cfg)
	}
	for _, g := range gens {
		if err := registerGen(db, g); err != nil {
			fatal(err)
		}
	}
	for _, l := range loads {
		store, err := registerLoad(db, l, mode)
		if err != nil {
			fatal(err)
		}
		defer store.Close() // release the block mappings/handles on exit
	}
	for _, gg := range groupGens {
		name, g, err := groupspec.FromSpec(gg)
		if err != nil {
			fatal(err)
		}
		db.RegisterGrouped(name, g)
	}
	for _, gl := range groupLoads {
		g, err := registerGroupLoad(db, gl, mode)
		if err != nil {
			fatal(err)
		}
		defer g.Close() // release the block mappings/handles on exit
	}
	for _, sl := range shardLoads {
		fault := isla.ClusterConfig{
			CallTimeout:  *callTimeout,
			MaxRetries:   *rpcRetries,
			BaseBackoff:  *rpcBackoff,
			AllowPartial: *allowPartial,
		}
		st, err := registerShards(db, sl, fault)
		if err != nil {
			fatal(err)
		}
		defer st.Close() // release the worker connections on exit
	}
	for _, tl := range texts {
		if err := registerText(db, tl); err != nil {
			fatal(err)
		}
	}
	for _, cl := range csvs {
		if err := registerCSV(db, cl); err != nil {
			fatal(err)
		}
	}
	if len(db.Tables()) == 0 {
		fmt.Fprintln(os.Stderr, "islacli: no tables; use -gen or -load")
		os.Exit(2)
	}
	db.SetAllowPartial(*allowPartial)
	if *verify || *scrub {
		corrupt, err := runScrub(db, *workers)
		if err != nil {
			fatal(err)
		}
		if *verify {
			if corrupt > 0 {
				os.Exit(1)
			}
			return
		}
	}
	fmt.Printf("tables: %s\n", strings.Join(db.Tables(), ", "))

	if *q != "" {
		if err := run(db, *q); err != nil {
			fatal(err)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("isla> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "--"):
		case line == "\\q" || line == "exit" || line == "quit":
			return
		case line == "\\d":
			fmt.Println(strings.Join(db.Tables(), "\n"))
		default:
			if err := run(db, line); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			}
		}
		fmt.Print("isla> ")
	}
}

// runScrub verifies every table's payload checksums, quarantines the
// failures, prints one summary line per table and returns how many corrupt
// blocks were found across all tables.
func runScrub(db *isla.DB, workers int) (int, error) {
	reports, err := db.Scrub(context.Background(), workers)
	if err != nil {
		return 0, err
	}
	corrupt := 0
	for _, tr := range reports {
		fmt.Printf("scrub %s: %s\n", tr.Table, tr.Report.String())
		corrupt += len(tr.Report.Corrupt)
	}
	return corrupt, nil
}

func run(db *isla.DB, sql string) error {
	res, err := db.Query(sql)
	if err != nil {
		return err
	}
	if len(res.Groups) > 0 {
		fmt.Printf("%s GROUP BY %s  [method=%s rows=%d samples=%d time=%s]\n",
			res.Query.Agg, res.Query.GroupBy, res.Method, res.Rows, res.Samples,
			res.Duration.Round(10_000))
		for _, gr := range res.Groups {
			if gr.Err != "" {
				fmt.Printf("  %-16q ERROR %s\n", gr.Group, gr.Err)
				continue
			}
			fmt.Printf("  %-16q = %.6f", gr.Group, gr.Value)
			if gr.CI != nil {
				fmt.Printf("  (±%.4g at %.0f%% confidence)", gr.CI.HalfWidth, gr.CI.Confidence*100)
			}
			if gr.Exact {
				fmt.Printf("  (exact)")
			}
			if gr.Filter != nil {
				fmt.Printf("  sel=%.3f", gr.Filter.Selectivity)
			}
			if p := gr.Partial; p != nil {
				fmt.Printf("  PARTIAL(%d/%d rows)", p.CoveredRows, p.TotalRows)
			}
			fmt.Printf("  [rows=%d samples=%d]\n", gr.Rows, gr.Samples)
		}
		return nil
	}
	fmt.Printf("%s = %.6f", res.Query.Agg, res.Value)
	if res.CI != nil {
		fmt.Printf("  (±%.4g at %.0f%% confidence)", res.CI.HalfWidth, res.CI.Confidence*100)
	}
	if res.Truncated {
		fmt.Printf("  TRUNCATED (budget cutoff: partial table coverage)")
	}
	if res.Filter != nil {
		fmt.Printf("  sel=%.3f", res.Filter.Selectivity)
	}
	fmt.Printf("  [method=%s rows=%d samples=%d time=%s]\n",
		res.Method, res.Rows, res.Samples, res.Duration.Round(10_000))
	if p := res.Partial; p != nil {
		fmt.Printf("PARTIAL: blocks %v quarantined; answer covers %d of %d rows\n",
			p.MissingBlocks, p.CoveredRows, p.TotalRows)
	}
	return nil
}

// registerGroupLoad opens a grouped table's manifest in the given open
// mode and returns the store so the caller can Close it when done.
func registerGroupLoad(db *isla.DB, spec string, mode isla.OpenMode) (*isla.GroupStore, error) {
	name, path, ok := strings.Cut(spec, "=")
	if !ok {
		return nil, fmt.Errorf("islacli: bad -loadgroup %q (want name=manifest.json)", spec)
	}
	g, err := isla.OpenGroupManifest(path, mode)
	if err != nil {
		return nil, err
	}
	db.RegisterGrouped(name, g)
	return g, nil
}

// registerShards opens a sharded table from its shard manifest — dialing
// and validating every worker it names — and registers it so the full
// query surface (WHERE, GROUP BY, plan cache) scatters to the shards.
func registerShards(db *isla.DB, spec string, fault isla.ClusterConfig) (*isla.ShardTable, error) {
	name, path, ok := strings.Cut(spec, "=")
	if !ok {
		return nil, fmt.Errorf("islacli: bad -shards %q (want name=shards.json)", spec)
	}
	man, err := isla.LoadShardManifest(path)
	if err != nil {
		return nil, err
	}
	st, err := isla.OpenShardTable(man, db.BaseConfig(), fault)
	if err != nil {
		return nil, err
	}
	db.RegisterSharded(name, st)
	return st, nil
}

// registerGen materializes a "name=dist:key=val,..." spec (the syntax
// shared with islaserv -gen) and registers the table.
func registerGen(db *isla.DB, spec string) error {
	name, store, err := workload.FromSpec(spec)
	if err != nil {
		return err
	}
	db.RegisterStore(name, store)
	return nil
}

// registerLoad opens prefix.000, prefix.001, … as one table in the given
// open mode and returns the store so the caller can Close it when done.
func registerLoad(db *isla.DB, spec string, mode isla.OpenMode) (*isla.Store, error) {
	name, prefix, ok := strings.Cut(spec, "=")
	if !ok {
		return nil, fmt.Errorf("islacli: bad -load %q (want name=prefix)", spec)
	}
	matches, err := filepath.Glob(prefix + ".*")
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("islacli: no block files match %s.*", prefix)
	}
	sort.Strings(matches)
	store, err := isla.OpenFilesMode(mode, matches...)
	if err != nil {
		return nil, err
	}
	db.RegisterStore(name, store)
	return store, nil
}

// registerText loads a one-value-per-line text file.
func registerText(db *isla.DB, spec string) error {
	name, path, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("islacli: bad -txt %q (want name=path)", spec)
	}
	store, err := isla.LoadText(path, 10)
	if err != nil {
		return err
	}
	db.RegisterStore(name, store)
	return nil
}

// registerCSV loads one numeric CSV column: name=path:column.
func registerCSV(db *isla.DB, spec string) error {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("islacli: bad -csv %q (want name=path:column)", spec)
	}
	path, column, ok := strings.Cut(rest, ":")
	if !ok {
		return fmt.Errorf("islacli: bad -csv %q (want name=path:column)", spec)
	}
	store, err := isla.LoadCSV(path, column, 10)
	if err != nil {
		return err
	}
	db.RegisterStore(name, store)
	return nil
}

// runCluster executes one AVG query against remote islaworker processes
// (the table name in the statement is ignored; the cluster is the table).
func runCluster(addrs, sql string, workers int, fault isla.ClusterConfig) error {
	if sql == "" {
		return fmt.Errorf("islacli: -cluster requires -q")
	}
	parsed, err := isla.ParseQuery(sql)
	if err != nil {
		return err
	}
	cfg := isla.DefaultConfig()
	if parsed.Precision > 0 {
		cfg.Precision = parsed.Precision
	}
	if parsed.Confidence > 0 {
		cfg.Confidence = parsed.Confidence
	}
	if parsed.SampleFraction > 0 {
		cfg.SampleFraction = parsed.SampleFraction
	}
	if parsed.HasSeed {
		cfg.Seed = parsed.Seed
	}
	coord := isla.NewCoordinator(cfg)
	coord.Workers = workers
	coord.Fault = fault
	for _, a := range strings.Split(addrs, ",") {
		if err := coord.Connect(strings.TrimSpace(a)); err != nil {
			return err
		}
	}
	defer coord.Close()
	res, err := coord.Run()
	if err != nil {
		return err
	}
	value := res.Estimate
	if parsed.Agg.String() == "SUM" {
		value = res.Sum
	}
	fmt.Printf("%s = %.6f  (±%.4g at %.0f%% confidence)  [cluster rows=%d samples=%d]\n",
		parsed.Agg, value, res.CI.HalfWidth, res.CI.Confidence*100,
		coord.TotalLen(), res.TotalSamples)
	if p := res.Partial; p != nil {
		fmt.Printf("PARTIAL: blocks %v unreachable; answer covers %d of %d rows\n",
			p.MissingBlocks, p.CoveredRows, p.TotalRows)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "islacli: %v\n", err)
	os.Exit(1)
}

// multiFlag collects repeatable string flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ";") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }
