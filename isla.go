// Package isla is an iterative scheme for leverage-based approximate
// aggregation — a Go implementation of Han, Wang, Wan and Li (ICDE 2019).
//
// ISLA answers AVG (and derived SUM) queries on block-partitioned data from
// a small uniform sample. It maintains two estimators — a pilot "sketch"
// with a relaxed confidence interval and a leverage-based estimator that
// re-weights samples by their individual contribution — and iteratively
// modulates both toward the true mean until they agree. Only O(1) state per
// block is kept (count, Σa, Σa², Σa³ for the S and L boundary regions), so
// no sample is ever stored and the scheme extends naturally to online
// refinement and distributed execution.
//
// # Quick start
//
//	db := isla.NewDB()
//	db.RegisterSlice("sales", values, 10) // 10 blocks
//	res, err := db.Query("SELECT AVG(v) FROM sales WITH PRECISION 0.1")
//	fmt.Println(res.Value, res.CI.Lo(), res.CI.Hi())
//
// Lower-level entry points expose the estimator directly (Estimate), the
// online mode (NewSession), parallel per-block execution (EstimateParallel)
// and the MAX/MIN extension (EstimateExtreme).
//
// # Execution runtime
//
// Every execution mode — batch (Estimate), parallel (EstimateParallel),
// online (Session), time-bounded (EstimateTimeBound) and the RPC cluster
// (Coordinator) — schedules its per-block calculation phase on one shared
// runtime (internal/exec): a worker pool with deterministic per-block seed
// derivation, in-order result delivery and context cancellation. Because
// seeds are derived before dispatch, Config.Workers is purely a speed knob:
// the answer is bit-identical for every worker count, and EstimateParallel
// returns exactly what Estimate returns for the same Config.Seed. The
// *Context variants (EstimateContext, Session.RefineContext, …) cancel a
// run mid-calculation.
package isla

import (
	"context"
	"time"

	"isla/internal/block"
	"isla/internal/cluster"
	"isla/internal/core"
	"isla/internal/dist"
	"isla/internal/engine"
	"isla/internal/extreme"
	"isla/internal/group"
	"isla/internal/ingest"
	"isla/internal/online"
	"isla/internal/plancache"
	"isla/internal/query"
	"isla/internal/timebound"
)

// Config holds every tunable of the ISLA estimator; see DefaultConfig for
// the paper's defaults.
type Config = core.Config

// Result is the outcome of an ISLA estimation run, including per-block
// partial answers and pilot diagnostics.
type Result = core.Result

// Store is a collection of blocks forming one logical column.
type Store = block.Store

// Block is one partition of a column.
type Block = block.Block

// QueryResult is the outcome of executing a SQL statement.
type QueryResult = engine.Result

// Query is a parsed statement.
type Query = query.Query

// Session is a resumable online aggregation (paper §VII-A).
type Session = online.Session

// Snapshot is the state of an online session after a refinement round.
type Snapshot = online.Snapshot

// ExtremeKind selects MAX or MIN for the extreme-value extension.
type ExtremeKind = extreme.Kind

// MAX and MIN aggregation kinds for EstimateExtreme.
const (
	MAX = extreme.Max
	MIN = extreme.Min
)

// ExtremeConfig tunes the extreme-value estimator.
type ExtremeConfig = extreme.Config

// ExtremeResult is an approximate MAX/MIN answer.
type ExtremeResult = extreme.Result

// DefaultConfig returns the paper's default experimental parameters
// (e=0.1, β=0.95, p1=0.5, p2=2, λ=0.8, η=0.5).
func DefaultConfig() Config { return core.DefaultConfig() }

// Partition splits data into b contiguous, near-equal in-memory blocks.
func Partition(data []float64, b int) *Store { return block.Partition(data, b) }

// OpenMode selects how block files are serviced: ModeMmap maps each file
// once and samples by direct slice gather (zero syscalls per draw), ModePread
// uses positioned reads on a shared handle, ModeAuto (the default) maps
// where the platform supports it and preads elsewhere. Estimates are
// bit-identical per seed in every mode.
type OpenMode = block.OpenMode

// Open modes for OpenFilesMode; ModeAuto is what OpenFiles uses.
const (
	ModeAuto  = block.ModeAuto
	ModeMmap  = block.ModeMmap
	ModePread = block.ModePread
)

// ParseOpenMode parses the flag spelling of an open mode ("auto", "mmap",
// "pread").
func ParseOpenMode(s string) (OpenMode, error) { return block.ParseOpenMode(s) }

// BlockSummary is the exact per-block statistics persisted in ISLB v2
// block-file footers (count, min, max, Σa, Σa²).
type BlockSummary = block.Summary

// OpenFiles opens previously written binary block files as a store in the
// default mode: memory-mapped where the platform supports it, positioned
// reads elsewhere. Call (*Store).Close to release the mappings/handles.
func OpenFiles(paths ...string) (*Store, error) {
	return OpenFilesMode(ModeAuto, paths...)
}

// OpenFilesMode is OpenFiles with an explicit open mode (mmap | pread).
func OpenFilesMode(mode OpenMode, paths ...string) (*Store, error) {
	blocks := make([]block.Block, 0, len(paths))
	for i, p := range paths {
		fb, err := block.Open(i, p, mode)
		if err != nil {
			// Release the handles already opened before reporting.
			block.NewStore(blocks...).Close()
			return nil, err
		}
		blocks = append(blocks, fb)
	}
	return block.NewStore(blocks...), nil
}

// WriteFiles writes data as b block files named <prefix>.000… in the ISLB
// v3 format (summary footers and payload checksums included) and returns a
// store over them. Files land atomically: a crash mid-write leaves either
// the old file or nothing, never a torn block.
func WriteFiles(prefix string, data []float64, b int) (*Store, error) {
	return block.WritePartitioned(prefix, data, b)
}

// Estimate runs the ISLA estimator on a store.
func Estimate(s *Store, cfg Config) (Result, error) { return core.Estimate(s, cfg) }

// EstimateContext is Estimate with a cancellation context: the calculation
// phase aborts promptly when ctx is cancelled.
func EstimateContext(ctx context.Context, s *Store, cfg Config) (Result, error) {
	return core.EstimateContext(ctx, s, cfg)
}

// EstimateParallel runs the estimator with parallel per-block workers
// (paper §VII-E): one worker per CPU unless cfg.Workers says otherwise.
// Results are bit-identical to Estimate for the same seed.
func EstimateParallel(s *Store, cfg Config) (Result, error) { return dist.Run(s, cfg) }

// EstimateParallelContext is EstimateParallel with a cancellation context.
func EstimateParallelContext(ctx context.Context, s *Store, cfg Config) (Result, error) {
	return dist.RunContext(ctx, s, cfg)
}

// NewSession starts an online aggregation over the store; call Refine to
// add samples and tighten the answer (paper §VII-A).
func NewSession(s *Store, cfg Config) (*Session, error) { return online.NewSession(s, cfg) }

// EstimateExtreme approximates MAX or MIN with leverage-based per-block
// sampling rates (paper §VII-D).
func EstimateExtreme(s *Store, kind ExtremeKind, cfg ExtremeConfig) (ExtremeResult, error) {
	return extreme.Estimate(s, kind, cfg)
}

// ExactExtreme computes the true MAX or MIN with a full scan.
func ExactExtreme(s *Store, kind ExtremeKind) (float64, error) { return extreme.Exact(s, kind) }

// ParseQuery parses one statement of the query dialect.
func ParseQuery(sql string) (Query, error) { return query.Parse(sql) }

// TimeBoundResult is the outcome of a wall-clock-budgeted run (§VII-F).
type TimeBoundResult = timebound.Result

// EstimateTimeBound runs ISLA under a wall-clock budget instead of a
// precision target (§VII-F): a calibration burst measures throughput, the
// affordable sample size fixes the achievable precision, and the standard
// pipeline runs with it.
func EstimateTimeBound(s *Store, cfg Config, budget time.Duration) (TimeBoundResult, error) {
	return timebound.Estimate(s, cfg, budget, timebound.Options{})
}

// EstimateTimeBoundContext is EstimateTimeBound with a cancellation context.
func EstimateTimeBoundContext(ctx context.Context, s *Store, cfg Config, budget time.Duration) (TimeBoundResult, error) {
	return timebound.EstimateContext(ctx, s, cfg, budget, timebound.Options{})
}

// Worker serves blocks to a remote coordinator over net/rpc (§VII-E).
type Worker = cluster.Worker

// NewWorker returns an RPC worker owning the given blocks.
func NewWorker(blocks ...Block) *Worker { return cluster.NewWorker(blocks...) }

// Coordinator drives an aggregation across RPC workers (§VII-E).
type Coordinator = cluster.Coordinator

// NewCoordinator returns a cluster coordinator with the given config; call
// Connect for each worker address, then Run.
func NewCoordinator(cfg Config) *Coordinator { return cluster.NewCoordinator(cfg) }

// ClusterConfig tunes the coordinator's fault tolerance: per-call
// deadlines, retry/backoff, the per-query retry budget, health probing and
// partial-result mode. Assign to Coordinator.Fault; the zero value takes
// sensible defaults.
type ClusterConfig = cluster.Config

// BlocksLostError reports blocks whose every replica was unreachable; a
// cluster run fails with it unless ClusterConfig.AllowPartial is set.
type BlocksLostError = cluster.BlocksLostError

// Partial accounts for a degraded cluster run (AllowPartial): which blocks
// were lost and how many rows the answer actually covers.
type Partial = core.Partial

// ClusterFaults is the deterministic fault-injection harness for the
// cluster transport: wrap the coordinator's dialer to inject seeded
// errors, hangs and delays per call, plus scripted worker kills.
type ClusterFaults = cluster.Faults

// NewClusterFaults returns a fault harness whose per-call decisions derive
// from seed.
func NewClusterFaults(seed uint64) *ClusterFaults { return cluster.NewFaults(seed) }

// ShardManifest is the catalog of a sharded table: which worker address
// owns which block ids at which lengths, plus the per-group block sets of
// grouped tables. It is the source of truth workers are validated against
// when a sharded table is opened.
type ShardManifest = cluster.ShardManifest

// ShardEntry assigns blocks (with lengths) to one worker address within a
// shard manifest; the same block id in two entries declares a replica.
type ShardEntry = cluster.ShardEntry

// ShardGroup assigns blocks to one group key within a shard manifest.
type ShardGroup = cluster.ShardGroup

// ShardTable is a sharded table: workers admitted per a shard manifest,
// queryable through the engine with pushed-down filtered, grouped and
// pilot execution. Answers are bit-identical per seed to a single-node
// run over the same blocks.
type ShardTable = cluster.ShardTable

// LoadShardManifest reads and validates a shard manifest file.
func LoadShardManifest(path string) (*ShardManifest, error) {
	return cluster.LoadShardManifest(path)
}

// OpenShardTable validates the manifest, connects to every shard worker
// and returns the queryable table. fault tunes the transport's fault
// tolerance (zero value: sensible defaults). Close the table to release
// the connections.
func OpenShardTable(man *ShardManifest, cfg Config, fault ClusterConfig) (*ShardTable, error) {
	return cluster.NewShardTable(man, cfg, fault, nil)
}

// RegisterSharded registers a shard table under name: queries scatter to
// the owning workers and gather per-block statistics, through the same
// plan cache and degradation policy as local tables. Exact scans,
// baseline estimators and time-budgeted runs refuse on sharded tables.
func (db *DB) RegisterSharded(name string, st *ShardTable) {
	db.engine.Catalog.RegisterSharded(name, st)
}

// GroupRow is one (group key, value) observation for grouped aggregation.
type GroupRow = group.Row

// GroupResult is one group's approximate aggregate.
type GroupResult = group.GroupResult

// GroupStore is a grouped column: one block store per group key, plus a
// combined view for ungrouped queries on the same table.
type GroupStore = group.Store

// GroupAgg selects the grouped aggregate for GroupAggregate.
type GroupAgg = group.Agg

// Grouped aggregates: AVG per group, SUM as AVG·|group|, COUNT exact.
const (
	AggAVG   = group.AggAVG
	AggSUM   = group.AggSUM
	AggCOUNT = group.AggCOUNT
)

// GroupAVG estimates per-group averages (the GROUP BY extension of
// §VII-D): rows are partitioned by key, each large group runs ISLA, small
// groups are scanned exactly. Results are sorted by group key.
func GroupAVG(rows []GroupRow, blocks int, cfg Config) ([]GroupResult, error) {
	return GroupAggregate(rows, blocks, AggAVG, cfg)
}

// GroupAggregate estimates any of the three aggregates per group.
func GroupAggregate(rows []GroupRow, blocks int, agg GroupAgg, cfg Config) ([]GroupResult, error) {
	g, err := group.Build(rows, blocks)
	if err != nil {
		return nil, err
	}
	return group.Aggregate(g, agg, cfg, group.Options{})
}

// BuildGroups partitions rows into a grouped store whose group column is
// named column (what a SQL GROUP BY must reference), with up to
// blocksPerGroup blocks per group.
func BuildGroups(column string, rows []GroupRow, blocksPerGroup int) (*GroupStore, error) {
	return group.BuildColumn(column, rows, blocksPerGroup)
}

// WriteGroupFiles writes rows as per-group partitioned ISLB block files
// (current format, with summary footers and payload checksums) under dir
// plus a manifest.json describing them, and returns the manifest path. OpenGroupManifest (or islacli/islaserv -loadgroup) serves grouped
// queries from those files — including summary-served pre-estimation,
// since every block carries a persisted summary footer.
func WriteGroupFiles(dir, column string, rows []GroupRow, blocksPerGroup int) (string, error) {
	return group.WriteFiles(dir, column, rows, blocksPerGroup)
}

// OpenGroupManifest opens a grouped table previously written by
// WriteGroupFiles in the given open mode. Close the store to release the
// mappings/handles.
func OpenGroupManifest(path string, mode OpenMode) (*GroupStore, error) {
	return group.OpenManifest(path, mode)
}

// LoadText reads a one-value-per-line text file into a partitioned store
// (the paper's ".txt document" block format).
func LoadText(path string, blocks int) (*Store, error) {
	s, _, err := ingest.LoadText(path, ingest.Options{Blocks: blocks, SkipInvalid: true})
	return s, err
}

// LoadCSV reads one numeric CSV column (by header name) into a partitioned
// store.
func LoadCSV(path, column string, blocks int) (*Store, error) {
	s, _, err := ingest.LoadCSV(path, column, 0, ingest.Options{Blocks: blocks, SkipInvalid: true})
	return s, err
}

// DB is a catalog of named tables with a query engine — the paper's system
// front end.
type DB struct {
	engine *engine.Engine
}

// NewDB returns an empty database with the default configuration.
func NewDB() *DB {
	return &DB{engine: engine.New(engine.NewCatalog())}
}

// SetBaseConfig atomically replaces the engine's base estimator
// configuration; query options (PRECISION, CONFIDENCE, …) still override
// per statement. Safe to call while queries are executing: in-flight
// queries keep the config they started with.
func (db *DB) SetBaseConfig(cfg Config) { db.engine.SetBaseConfig(cfg) }

// BaseConfig returns a copy of the engine's base configuration.
func (db *DB) BaseConfig() Config { return db.engine.BaseConfig() }

// EnablePlanCache attaches a pilot-plan cache of the given capacity (0
// for the default). Repeat ISLA queries on the same table, seed and
// sample fraction then skip the pre-estimation pilot entirely and return
// bit-identical answers; re-registering a table invalidates its cached
// pilots. With the cache enabled, ISLA queries run the per-block (§VII-C)
// pre-estimation so pilots are shareable across precision targets.
func (db *DB) EnablePlanCache(capacity int) { db.engine.EnablePlanCache(capacity) }

// DisablePlanCache detaches the plan cache; queries run cold pilots again.
func (db *DB) DisablePlanCache() { db.engine.DisablePlanCache() }

// PlanCacheStats is a snapshot of the plan cache's counters.
type PlanCacheStats = plancache.Stats

// PlanCacheStats returns the cache counters, or false when no cache is
// attached.
func (db *DB) PlanCacheStats() (PlanCacheStats, bool) {
	c := db.engine.PlanCache()
	if c == nil {
		return PlanCacheStats{}, false
	}
	return c.Stats(), true
}

// RegisterStore registers a block store as a named table.
func (db *DB) RegisterStore(name string, s *Store) { db.engine.Catalog.Register(name, s) }

// RegisterGrouped registers a grouped store as a named table: GROUP BY
// queries answer per group, ungrouped queries aggregate the combined view.
func (db *DB) RegisterGrouped(name string, g *GroupStore) {
	db.engine.Catalog.RegisterGrouped(name, g)
}

// RegisterGroupedRows partitions (group, value) rows into a grouped table
// whose group column is named column.
func (db *DB) RegisterGroupedRows(name, column string, rows []GroupRow, blocksPerGroup int) error {
	g, err := group.BuildColumn(column, rows, blocksPerGroup)
	if err != nil {
		return err
	}
	db.engine.Catalog.RegisterGrouped(name, g)
	return nil
}

// RegisterSlice partitions data into b blocks and registers it as a table.
func (db *DB) RegisterSlice(name string, data []float64, b int) {
	db.engine.Catalog.Register(name, block.Partition(data, b))
}

// Tables returns the registered table names, sorted.
func (db *DB) Tables() []string { return db.engine.Catalog.Names() }

// Query parses and executes one statement.
func (db *DB) Query(sql string) (QueryResult, error) { return db.engine.ExecuteSQL(sql) }

// QueryContext parses and executes one statement under ctx; cancelling it
// aborts the estimation mid-calculation.
func (db *DB) QueryContext(ctx context.Context, sql string) (QueryResult, error) {
	return db.engine.ExecuteSQLContext(ctx, sql)
}

// Execute runs an already-parsed query.
func (db *DB) Execute(q Query) (QueryResult, error) { return db.engine.Execute(q) }

// ExecuteContext runs an already-parsed query under ctx.
func (db *DB) ExecuteContext(ctx context.Context, q Query) (QueryResult, error) {
	return db.engine.ExecuteContext(ctx, q)
}

// SetWorkers sets the exec-runtime concurrency for every estimation the
// database runs: 0 sequential, negative one worker per CPU, positive
// as-is. Purely a speed knob — answers do not depend on it. Safe to call
// while queries are executing.
func (db *DB) SetWorkers(n int) { db.engine.SetWorkers(n) }

// SetGroupExactThreshold sets the small-group exact fallback for GROUP BY
// queries: groups with at most n rows are scanned exactly instead of
// sampled. Zero (the default) means group.DefaultExactThreshold (2000);
// negative disables the fallback so every group runs the estimator.
func (db *DB) SetGroupExactThreshold(n int64) { db.engine.SetGroupExactThreshold(n) }

// CorruptBlockError reports a block whose bytes fail integrity checking:
// a torn header, an impossible size, a footer or payload checksum
// mismatch, or an access to a quarantined block.
type CorruptBlockError = block.CorruptBlockError

// QuarantinedError reports a query refused because quarantined blocks
// make the full answer unavailable (and degradation is off, or the
// statement cannot degrade soundly).
type QuarantinedError = core.QuarantinedError

// ScrubReport is one store's integrity-scrub outcome: blocks verified,
// blocks skipped (no payload checksum to check), and what failed.
type ScrubReport = block.ScrubReport

// TableScrub is one table's report from DB.Scrub.
type TableScrub = engine.TableScrub

// Scrub verifies every registered table's payload checksums against the
// on-disk bytes and quarantines whatever fails, returning per-table
// reports. Quarantined blocks stop answering queries: statements refuse
// with *QuarantinedError unless SetAllowPartial is on and the statement
// can degrade soundly. workers bounds the scrub's concurrency (0
// sequential, negative one per CPU).
func (db *DB) Scrub(ctx context.Context, workers int) ([]TableScrub, error) {
	return db.engine.Scrub(ctx, workers)
}

// SetAllowPartial switches degraded answering for tables with quarantined
// blocks: unfiltered ISLA estimates run over the intact blocks and report
// the coverage in Result.Partial, instead of refusing. Statements whose
// statistics cannot be rescaled soundly (filters, baseline methods,
// time-bounded runs) still refuse. Safe to call while queries execute.
func (db *DB) SetAllowPartial(v bool) { db.engine.SetAllowPartial(v) }

// QuarantinedBlocks maps each damaged table to its quarantined block ids;
// the map is empty while every table is healthy.
func (db *DB) QuarantinedBlocks() map[string][]int { return db.engine.QuarantinedBlocks() }
