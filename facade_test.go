package isla

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"isla/internal/stats"
)

func TestTimeBoundFacade(t *testing.T) {
	s := Partition(normalData(300000, 11), 10)
	cfg := DefaultConfig()
	cfg.Seed = 3
	res, err := EstimateTimeBound(s, cfg, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.AchievedPrecision <= 0 {
		t.Fatal("no achieved precision")
	}
	if math.Abs(res.Estimate-100) > 5*res.AchievedPrecision {
		t.Fatalf("estimate %v beyond achieved precision band", res.Estimate)
	}
}

func TestQueryTimeBudget(t *testing.T) {
	db := NewDB()
	db.RegisterSlice("t", normalData(200000, 12), 10)
	res, err := db.Query("SELECT AVG(v) FROM t WITH TIME 0.1 SEED 4")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-100) > 3 {
		t.Fatalf("time-budget avg = %v", res.Value)
	}
	if res.CI == nil || res.CI.HalfWidth <= 0 {
		t.Fatal("missing derived CI")
	}
	// TIME with a non-ISLA method is rejected at parse time.
	if _, err := db.Query("SELECT AVG(v) FROM t WITH TIME 0.1 METHOD US"); err == nil {
		t.Fatal("TIME with US accepted")
	}
}

func TestClusterFacade(t *testing.T) {
	s := Partition(normalData(200000, 13), 6)
	w := NewWorker(s.Blocks()...)
	l, err := w.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	cfg := DefaultConfig()
	cfg.Precision = 0.5
	cfg.Seed = 5
	coord := NewCoordinator(cfg)
	if err := coord.Connect(l.Addr().String()); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-100) > 1.5 {
		t.Fatalf("cluster estimate = %v", res.Estimate)
	}
}

func TestGroupAVGFacade(t *testing.T) {
	r := stats.NewRNG(14)
	rows := make([]GroupRow, 0, 60000)
	for i := 0; i < 30000; i++ {
		rows = append(rows, GroupRow{Group: "a", Value: 100 + 20*r.NormFloat64()})
		rows = append(rows, GroupRow{Group: "b", Value: 50 + 10*r.NormFloat64()})
	}
	cfg := DefaultConfig()
	cfg.Precision = 1
	cfg.Seed = 6
	res, err := GroupAVG(rows, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Group != "a" || res[1].Group != "b" {
		t.Fatalf("res = %v", res)
	}
	if math.Abs(res[0].Estimate-100) > 2 || math.Abs(res[1].Estimate-50) > 2 {
		t.Fatalf("group estimates = %v, %v", res[0].Estimate, res[1].Estimate)
	}
}

func TestLoadTextFacade(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vals.txt")
	if err := os.WriteFile(path, []byte("1\n2\n3\nnot-a-number\n4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadText(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalLen() != 4 {
		t.Fatalf("len = %d (invalid line should be skipped)", s.TotalLen())
	}
	mean, _ := s.ExactMean()
	if mean != 2.5 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestLoadCSVFacade(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(path, []byte("id,price\n1,10\n2,30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadCSV(path, "price", 1)
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := s.ExactMean()
	if mean != 20 {
		t.Fatalf("mean = %v", mean)
	}
	if _, err := LoadCSV(path, "missing", 1); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestGroupedQueryFacade(t *testing.T) {
	r := stats.NewRNG(21)
	rows := make([]GroupRow, 0, 90000)
	for i := 0; i < 30000; i++ {
		rows = append(rows, GroupRow{Group: "a", Value: 100 + 20*r.NormFloat64()})
		rows = append(rows, GroupRow{Group: "b", Value: 50 + 10*r.NormFloat64()})
		rows = append(rows, GroupRow{Group: "c", Value: 200 + 40*r.NormFloat64()})
	}
	db := NewDB()
	if err := db.RegisterGroupedRows("sales", "region", rows, 6); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT AVG(v) FROM sales WHERE v > 40 GROUP BY region WITH PRECISION 0.5 SEED 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("groups = %+v", res.Groups)
	}
	for _, gr := range res.Groups {
		if gr.Err != "" {
			t.Fatalf("group %s: %s", gr.Group, gr.Err)
		}
		if gr.CI == nil || gr.Filter == nil {
			t.Fatalf("group %s missing diagnostics: %+v", gr.Group, gr)
		}
	}
	// Ungrouped statements aggregate the combined view.
	all, err := db.Query("SELECT COUNT(*) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if all.Value != 90000 {
		t.Fatalf("combined count = %v", all.Value)
	}
	// GroupAggregate covers the three aggregates directly.
	cfg := DefaultConfig()
	cfg.Precision = 1
	cfg.Seed = 4
	sums, err := GroupAggregate(rows, 6, AggSUM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := GroupAggregate(rows, 6, AggCOUNT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sums {
		if counts[i].Estimate != 30000 {
			t.Fatalf("count = %+v", counts[i])
		}
		if sums[i].Estimate <= 0 {
			t.Fatalf("sum = %+v", sums[i])
		}
	}
}

// TestGroupFilesFacade: WriteGroupFiles → OpenGroupManifest → grouped
// queries on the file-backed store, in both open modes, bit-identical to
// the in-memory registration.
func TestGroupFilesFacade(t *testing.T) {
	r := stats.NewRNG(31)
	rows := make([]GroupRow, 0, 40000)
	for i := 0; i < 20000; i++ {
		rows = append(rows, GroupRow{Group: "x", Value: 100 + 20*r.NormFloat64()})
		rows = append(rows, GroupRow{Group: "y", Value: 10 + 2*r.NormFloat64()})
	}
	memDB := NewDB()
	if err := memDB.RegisterGroupedRows("t", "g", rows, 4); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT AVG(v) FROM t GROUP BY g WITH PRECISION 0.5 SEED 7"
	want, err := memDB.Query(sql)
	if err != nil {
		t.Fatal(err)
	}

	man, err := WriteGroupFiles(t.TempDir(), "g", rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []OpenMode{ModePread, ModeMmap} {
		g, err := OpenGroupManifest(man, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		db := NewDB()
		db.RegisterGrouped("t", g)
		got, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for i := range want.Groups {
			if got.Groups[i].Value != want.Groups[i].Value || got.Groups[i].Samples != want.Groups[i].Samples {
				t.Errorf("%v group %s: %v/%d != mem %v/%d", mode, got.Groups[i].Group,
					got.Groups[i].Value, got.Groups[i].Samples,
					want.Groups[i].Value, want.Groups[i].Samples)
			}
		}
		if err := g.Close(); err != nil {
			t.Fatalf("%v: close: %v", mode, err)
		}
	}
}
