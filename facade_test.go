package isla

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"isla/internal/stats"
)

func TestTimeBoundFacade(t *testing.T) {
	s := Partition(normalData(300000, 11), 10)
	cfg := DefaultConfig()
	cfg.Seed = 3
	res, err := EstimateTimeBound(s, cfg, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.AchievedPrecision <= 0 {
		t.Fatal("no achieved precision")
	}
	if math.Abs(res.Estimate-100) > 5*res.AchievedPrecision {
		t.Fatalf("estimate %v beyond achieved precision band", res.Estimate)
	}
}

func TestQueryTimeBudget(t *testing.T) {
	db := NewDB()
	db.RegisterSlice("t", normalData(200000, 12), 10)
	res, err := db.Query("SELECT AVG(v) FROM t WITH TIME 0.1 SEED 4")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-100) > 3 {
		t.Fatalf("time-budget avg = %v", res.Value)
	}
	if res.CI == nil || res.CI.HalfWidth <= 0 {
		t.Fatal("missing derived CI")
	}
	// TIME with a non-ISLA method is rejected at parse time.
	if _, err := db.Query("SELECT AVG(v) FROM t WITH TIME 0.1 METHOD US"); err == nil {
		t.Fatal("TIME with US accepted")
	}
}

func TestClusterFacade(t *testing.T) {
	s := Partition(normalData(200000, 13), 6)
	w := NewWorker(s.Blocks()...)
	l, err := w.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	cfg := DefaultConfig()
	cfg.Precision = 0.5
	cfg.Seed = 5
	coord := NewCoordinator(cfg)
	if err := coord.Connect(l.Addr().String()); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-100) > 1.5 {
		t.Fatalf("cluster estimate = %v", res.Estimate)
	}
}

func TestGroupAVGFacade(t *testing.T) {
	r := stats.NewRNG(14)
	rows := make([]GroupRow, 0, 60000)
	for i := 0; i < 30000; i++ {
		rows = append(rows, GroupRow{Group: "a", Value: 100 + 20*r.NormFloat64()})
		rows = append(rows, GroupRow{Group: "b", Value: 50 + 10*r.NormFloat64()})
	}
	cfg := DefaultConfig()
	cfg.Precision = 1
	cfg.Seed = 6
	res, err := GroupAVG(rows, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Group != "a" || res[1].Group != "b" {
		t.Fatalf("res = %v", res)
	}
	if math.Abs(res[0].Estimate-100) > 2 || math.Abs(res[1].Estimate-50) > 2 {
		t.Fatalf("group estimates = %v, %v", res[0].Estimate, res[1].Estimate)
	}
}

func TestLoadTextFacade(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vals.txt")
	if err := os.WriteFile(path, []byte("1\n2\n3\nnot-a-number\n4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadText(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalLen() != 4 {
		t.Fatalf("len = %d (invalid line should be skipped)", s.TotalLen())
	}
	mean, _ := s.ExactMean()
	if mean != 2.5 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestLoadCSVFacade(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(path, []byte("id,price\n1,10\n2,30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadCSV(path, "price", 1)
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := s.ExactMean()
	if mean != 20 {
		t.Fatalf("mean = %v", mean)
	}
	if _, err := LoadCSV(path, "missing", 1); err == nil {
		t.Fatal("missing column accepted")
	}
}
