module isla

go 1.24
