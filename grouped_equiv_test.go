package isla

import (
	"fmt"
	"math"
	"testing"

	"isla/internal/core"
	"isla/internal/stats"
)

// groupedBattery is one workload of the grouped-equivalence battery: three
// groups of the same distribution family with shifted locations, plus the
// filter threshold used for the WHERE checks (chosen so every group keeps
// a healthy acceptance fraction).
type groupedBattery struct {
	name      string
	dists     map[string]stats.Dist
	precision float64
	threshold float64
	// ciMult is the CI slack multiplier for the filtered checks: 3 for
	// the well-behaved workloads; wider for the outlier mixture, whose
	// sample σ undercovers when few of the 1% outliers land in the draw
	// (low estimate and narrow CI are correlated there).
	ciMult float64
}

func batteryWorkloads() []groupedBattery {
	outlier := func(mu float64) stats.Dist {
		return stats.NewMixture(
			stats.Component{Weight: 0.99, Dist: stats.Normal{Mu: mu, Sigma: 20}},
			stats.Component{Weight: 0.01, Dist: stats.Normal{Mu: 1000, Sigma: 50}},
		)
	}
	return []groupedBattery{
		{
			name: "normal",
			dists: map[string]stats.Dist{
				"a": stats.Normal{Mu: 100, Sigma: 20},
				"b": stats.Normal{Mu: 120, Sigma: 20},
				"c": stats.Normal{Mu: 140, Sigma: 20},
			},
			precision: 1.0,
			threshold: 110,
			ciMult:    3,
		},
		{
			name: "lognormal",
			dists: map[string]stats.Dist{
				"a": stats.LogNormal{Mu: 2.8, Sigma: 0.5},
				"b": stats.LogNormal{Mu: 3.0, Sigma: 0.5},
				"c": stats.LogNormal{Mu: 3.2, Sigma: 0.5},
			},
			precision: 2.0,
			threshold: 15,
			ciMult:    3,
		},
		{
			name: "outliers",
			dists: map[string]stats.Dist{
				"a": outlier(100),
				"b": outlier(140),
				"c": outlier(180),
			},
			precision: 8.0,
			threshold: 120,
			ciMult:    6,
		},
	}
}

// batteryRows materializes one battery workload: 40k rows per group, well
// above the exact-group fallback, so every group is sampled and the
// bit-identity contract applies everywhere.
func batteryRows(w groupedBattery, seed uint64) []GroupRow {
	r := stats.NewRNG(seed)
	const perGroup = 40_000
	rows := make([]GroupRow, 0, 3*perGroup)
	for _, key := range []string{"a", "b", "c"} {
		d := w.dists[key]
		for i := 0; i < perGroup; i++ {
			rows = append(rows, GroupRow{Group: key, Value: d.Sample(r)})
		}
	}
	return rows
}

// TestGroupedEquivalenceBattery is the end-to-end grouped contract: for
// seeds × storage modes {mem, pread, mmap} × workers {1, 4}, every
// group's engine answer must be bit-identical to running plain Estimate
// on that group's store in isolation with the same configuration — the
// grouped path adds no statistical machinery of its own — and identical
// across storage modes and worker counts.
func TestGroupedEquivalenceBattery(t *testing.T) {
	for _, w := range batteryWorkloads() {
		t.Run(w.name, func(t *testing.T) {
			rows := batteryRows(w, 77)
			man, err := WriteGroupFiles(t.TempDir(), "g", rows, 6)
			if err != nil {
				t.Fatal(err)
			}
			memStore, err := BuildGroups("g", rows, 6)
			if err != nil {
				t.Fatal(err)
			}
			stores := map[string]*GroupStore{"mem": memStore}
			for label, mode := range map[string]OpenMode{"pread": ModePread, "mmap": ModeMmap} {
				g, err := OpenGroupManifest(man, mode)
				if err != nil {
					t.Fatal(err)
				}
				defer g.Close()
				stores[label] = g
			}

			for _, seed := range []uint64{3, 17} {
				sql := fmt.Sprintf("SELECT AVG(v) FROM t GROUP BY g WITH PRECISION %g SEED %d", w.precision, seed)
				// reference[group] is the first answer seen; every other
				// mode × worker combination must reproduce it exactly.
				reference := map[string]QueryResult{}
				for _, label := range []string{"mem", "pread", "mmap"} {
					for _, workers := range []int{1, 4} {
						db := NewDB()
						db.RegisterGrouped("t", stores[label])
						db.SetWorkers(workers)
						res, err := db.Query(sql)
						if err != nil {
							t.Fatalf("%s workers=%d: %v", label, workers, err)
						}
						if len(res.Groups) != 3 {
							t.Fatalf("%s: groups = %+v", label, res.Groups)
						}
						for _, gr := range res.Groups {
							if gr.Err != "" {
								t.Fatalf("%s group %s: %s", label, gr.Group, gr.Err)
							}
							if gr.Exact {
								t.Fatalf("%s group %s unexpectedly exact (battery needs sampled groups)", label, gr.Group)
							}
						}
						key := fmt.Sprintf("%s/w%d", label, workers)
						if base, ok := reference["_"]; ok {
							for i, gr := range res.Groups {
								bg := base.Groups[i]
								if gr.Value != bg.Value || gr.Samples != bg.Samples {
									t.Errorf("seed %d %s group %s: %v/%d != reference %v/%d",
										seed, key, gr.Group, gr.Value, gr.Samples, bg.Value, bg.Samples)
								}
							}
						} else {
							reference["_"] = res
						}

						// Isolation check once per worker count on the mem
						// store: the grouped answer is exactly plain Estimate
						// on the group's own store.
						if label == "mem" {
							cfg := DefaultConfig()
							cfg.Precision = w.precision
							cfg.Seed = seed
							cfg.Workers = workers
							for _, gr := range res.Groups {
								s, err := stores[label].Group(gr.Group)
								if err != nil {
									t.Fatal(err)
								}
								want, err := Estimate(s, cfg)
								if err != nil {
									t.Fatal(err)
								}
								if gr.Value != want.Estimate || gr.Samples != want.TotalSamples {
									t.Errorf("seed %d workers=%d group %s: engine %v/%d != isolated %v/%d",
										seed, workers, gr.Group, gr.Value, gr.Samples,
										want.Estimate, want.TotalSamples)
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestFilteredEquivalenceBattery checks WHERE answers against exact
// filtered scans across the three battery workloads and all storage
// modes: the estimated conditional mean must land within a tripled CI of
// the exact filtered mean, and the filtered answers themselves must be
// bit-identical across modes, worker counts, and zone-map pruning on/off
// (every mode × worker combination re-runs with DisablePruning and must
// reproduce the same answer bits — pruning is purely physical).
func TestFilteredEquivalenceBattery(t *testing.T) {
	for _, w := range batteryWorkloads() {
		t.Run(w.name, func(t *testing.T) {
			rows := batteryRows(w, 99)
			man, err := WriteGroupFiles(t.TempDir(), "g", rows, 6)
			if err != nil {
				t.Fatal(err)
			}
			memStore, err := BuildGroups("g", rows, 6)
			if err != nil {
				t.Fatal(err)
			}
			pred := func(v float64) bool { return v > w.threshold }
			sql := fmt.Sprintf("SELECT AVG(v) FROM t WHERE v > %g GROUP BY g WITH PRECISION %g SEED 5",
				w.threshold, w.precision)

			var base QueryResult
			first := true
			check := func(label string, g *GroupStore, workers int) {
				db := NewDB()
				db.RegisterGrouped("t", g)
				db.SetWorkers(workers)
				res, err := db.Query(sql)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				// Pruning-off leg: the same query with zone-map pruning
				// disabled must reproduce every answer bit — pruning only
				// changes which draws are physically serviced.
				cfg := db.BaseConfig()
				cfg.DisablePruning = true
				db.SetBaseConfig(cfg)
				noprune, err := db.Query(sql)
				if err != nil {
					t.Fatalf("%s (pruning off): %v", label, err)
				}
				for i, gr := range res.Groups {
					ng := noprune.Groups[i]
					if gr.Value != ng.Value || gr.Samples != ng.Samples || ciHalf(gr.CI) != ciHalf(ng.CI) {
						t.Errorf("%s group %s: pruning changed the answer: %v/%d/±%v vs %v/%d/±%v",
							label, gr.Group, gr.Value, gr.Samples, ciHalf(gr.CI),
							ng.Value, ng.Samples, ciHalf(ng.CI))
					}
				}
				for _, gr := range res.Groups {
					if gr.Err != "" {
						t.Fatalf("%s group %s: %s", label, gr.Group, gr.Err)
					}
					s, err := g.Group(gr.Group)
					if err != nil {
						t.Fatal(err)
					}
					n, sum, err := core.ExactFiltered(s, pred)
					if err != nil {
						t.Fatal(err)
					}
					exact := sum / float64(n)
					if gr.CI == nil || math.Abs(gr.Value-exact) > w.ciMult*gr.CI.HalfWidth {
						t.Errorf("%s group %s: filtered %v vs exact %v (±%v)",
							label, gr.Group, gr.Value, exact, ciHalf(gr.CI))
					}
					if gr.Filter == nil || gr.Filter.Accepted == 0 {
						t.Errorf("%s group %s: filter info %+v", label, gr.Group, gr.Filter)
					}
				}
				if first {
					base = res
					first = false
					return
				}
				for i, gr := range res.Groups {
					bg := base.Groups[i]
					if gr.Value != bg.Value || gr.Samples != bg.Samples {
						t.Errorf("%s group %s: %v/%d != reference %v/%d",
							label, gr.Group, gr.Value, gr.Samples, bg.Value, bg.Samples)
					}
				}
			}

			check("mem/w1", memStore, 1)
			check("mem/w4", memStore, 4)
			for label, mode := range map[string]OpenMode{"pread": ModePread, "mmap": ModeMmap} {
				g, err := OpenGroupManifest(man, mode)
				if err != nil {
					t.Fatal(err)
				}
				check(label+"/w1", g, 1)
				check(label+"/w4", g, 4)
				if err := g.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func ciHalf(ci *stats.ConfidenceInterval) float64 {
	if ci == nil {
		return 0
	}
	return ci.HalfWidth
}
