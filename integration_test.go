package isla

// End-to-end integration tests crossing every layer: data generation →
// binary block files on disk → catalog → the query dialect → each execution
// mode (plain, parallel, cluster, online, time-bound) — asserting the modes
// agree with each other and with the exact scan.

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"isla/internal/stats"
	"isla/internal/workload"
)

func TestEndToEndFileBackedPipeline(t *testing.T) {
	dir := t.TempDir()

	// 1. Generate and persist a dataset as binary block files.
	data := normalData(400000, 31)
	store, err := WriteFiles(filepath.Join(dir, "sales"), data, 8)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Reopen from disk as a fresh store.
	paths := make([]string, 8)
	for i := range paths {
		paths[i] = filepath.Join(dir, "sales") + "." + padded(i)
	}
	reopened, err := OpenFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.TotalLen() != store.TotalLen() {
		t.Fatalf("reopened %d rows, wrote %d", reopened.TotalLen(), store.TotalLen())
	}

	// 3. Query through the engine.
	db := NewDB()
	db.RegisterStore("sales", reopened)
	exact, err := db.Query("SELECT AVG(v) FROM sales METHOD EXACT")
	if err != nil {
		t.Fatal(err)
	}
	approx, err := db.Query("SELECT AVG(v) FROM sales WITH PRECISION 0.3 SEED 8")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(approx.Value-exact.Value) > 0.6 {
		t.Fatalf("approx %v vs exact %v", approx.Value, exact.Value)
	}

	// 4. SUM and COUNT must be mutually consistent.
	sum, err := db.Query("SELECT SUM(v) FROM sales WITH PRECISION 0.3 SEED 8")
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := db.Query("SELECT COUNT(*) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Value/cnt.Value-approx.Value) > 1e-9 {
		t.Fatal("SUM/COUNT inconsistent with AVG")
	}
}

func padded(i int) string {
	return string([]byte{'0', '0', byte('0' + i)})
}

func TestExecutionModesAgree(t *testing.T) {
	store := Partition(normalData(300000, 37), 10)
	cfg := DefaultConfig()
	cfg.Precision = 0.4
	cfg.Seed = 17

	seq, err := Estimate(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := EstimateParallel(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Estimate != par.Estimate {
		t.Fatalf("parallel %v != sequential %v", par.Estimate, seq.Estimate)
	}

	// The RPC cluster draws its own pilot, so exact equality is not
	// expected; agreement within the shared precision is.
	w := NewWorker(store.Blocks()...)
	l, err := w.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	coord := NewCoordinator(cfg)
	if err := coord.Connect(l.Addr().String()); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	clu, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(clu.Estimate-seq.Estimate) > 2*cfg.Precision {
		t.Fatalf("cluster %v vs sequential %v", clu.Estimate, seq.Estimate)
	}

	// Online refinement converges to the same neighbourhood.
	sess, err := NewSession(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	for i := 0; i < 3; i++ {
		if snap, err = sess.Refine(1); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(snap.Result.Estimate-seq.Estimate) > 2*cfg.Precision {
		t.Fatalf("online %v vs sequential %v", snap.Result.Estimate, seq.Estimate)
	}

	// Time-bound mode lands within its own achieved precision band.
	tb, err := EstimateTimeBound(store, cfg, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tb.Estimate-seq.Estimate) > 5*tb.AchievedPrecision {
		t.Fatalf("time-bound %v vs sequential %v (achieved e=%v)",
			tb.Estimate, seq.Estimate, tb.AchievedPrecision)
	}
}

func TestEndToEndNonIIDQueryPath(t *testing.T) {
	s, truth, err := workload.PaperNonIID(60000, 41)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Precision = 0.5
	cfg.PerBlockBounds = true
	cfg.VarianceAwareRates = true
	cfg.Seed = 19

	db := NewDB()
	db.SetBaseConfig(cfg)
	db.RegisterStore("global", s)
	res, err := db.Query("SELECT AVG(v) FROM global WITH PRECISION 0.5 SEED 19")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-truth) > 2*cfg.Precision {
		t.Fatalf("non-iid query %v vs truth %v", res.Value, truth)
	}
}

func TestEndToEndGroupedWorkload(t *testing.T) {
	// Group rows generated from distinct distributions; grouped AVG must
	// recover each group's mean through the public API.
	r := stats.NewRNG(47)
	var rows []GroupRow
	groups := map[string]stats.Normal{
		"retail":    {Mu: 120, Sigma: 25},
		"wholesale": {Mu: 80, Sigma: 10},
	}
	for name, d := range groups {
		for i := 0; i < 60000; i++ {
			rows = append(rows, GroupRow{Group: name, Value: d.Sample(r)})
		}
	}
	cfg := DefaultConfig()
	cfg.Precision = 1
	cfg.Seed = 23
	res, err := GroupAVG(rows, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, gr := range res {
		want := groups[gr.Group].Mu
		if math.Abs(gr.Estimate-want) > 2 {
			t.Errorf("group %s: %v vs %v", gr.Group, gr.Estimate, want)
		}
	}
}
